//! Gradient synchronization for MoDa parallelism.
//!
//! After each rank's local backward:
//!
//! * **dense gradients** (replicated parameters) are averaged with a ring
//!   all-reduce — standard data parallelism;
//! * **expert gradients** are *not* communicated (each expert lives on one
//!   rank only) but are rescaled by `1/R`, because each rank's loss is the
//!   mean over its `1/R`-sized micro-batch while an expert accumulates
//!   contributions from all ranks' tokens.
//!
//! Two dense paths exist:
//!
//! * [`sync_grads`] — flatten everything after backward, one monolithic
//!   blocking all-reduce (simple, zero overlap);
//! * [`backward_and_sync_overlapped`] — a `GradBucketer` rides the
//!   backward pass via `backward_with_grad_ready`, fills fixed-size
//!   buckets in reverse parameter-visit order, launches each bucket's
//!   ring all-reduce the moment it fills, and polls in-flight rings from
//!   inside the hook so communication overlaps the remaining backward
//!   compute. This is BaGuaLu's communication/computation-overlap strategy
//!   for the data-parallel dimension, realized functionally.
//!
//! With either path, an `R`-rank step is numerically equivalent to a
//! single-rank step over the concatenated global batch (up to all-reduce
//! summation order) — the property the integration tests pin down.

use crate::model_dist::DistTransformer;
use bagualu_comm::collectives::{
    allreduce_recursive_doubling, allreduce_wire, broadcast, bucket_tag, ReduceOp, RingAllreduce,
};
use bagualu_comm::payload::WireDType;
use bagualu_comm::shm::Communicator;
use bagualu_tensor::Tensor;
use bagualu_trace::{self as trace, names};

/// Synchronize gradients across the data-parallel group. Returns the number
/// of dense gradient scalars reduced (for communication-volume accounting).
pub fn sync_grads<C: Communicator>(model: &mut DistTransformer, comm: &C) -> usize {
    sync_grads_wire(model, comm, WireDType::F32)
}

/// [`sync_grads`] with an explicit wire format for the dense all-reduce:
/// gradients are rounded to `wire` per ring hop while the reduction itself
/// accumulates in `f32`. `WireDType::F32` is bit-identical to
/// [`sync_grads`].
pub fn sync_grads_wire<C: Communicator>(
    model: &mut DistTransformer,
    comm: &C,
    wire: WireDType,
) -> usize {
    let _span = trace::span(names::GRAD_SYNC);
    let r = comm.size() as f32;

    // Flatten dense grads in the deterministic visit order.
    let mut flat = Vec::new();
    model.visit_dense_params(&mut |p| flat.extend_from_slice(p.grad.as_slice()));
    let count = flat.len();

    let mut reduced = allreduce_wire(comm, flat, ReduceOp::Sum, wire);
    let inv = 1.0 / r;
    for g in &mut reduced {
        *g *= inv;
    }

    let mut off = 0usize;
    model.visit_dense_params(&mut |p| {
        let n = p.grad.len();
        p.grad
            .as_mut_slice()
            .copy_from_slice(&reduced[off..off + n]);
        off += n;
    });

    // Experts: rescale only.
    model.visit_expert_params(&mut |p| p.grad.scale(1.0 / r));
    count
}

/// Outcome of one overlapped backward+sync, for overlap accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncStats {
    /// Dense gradient scalars reduced.
    pub dense_scalars: usize,
    /// Buckets launched (≥ 1 unless the model has no dense parameters).
    pub buckets: usize,
    /// Ring steps across all buckets (`2(R-1)` per bucket at `R` ranks).
    pub ring_steps: usize,
    /// Ring steps that completed while backward compute was still running —
    /// the *measured* communication/computation overlap.
    pub ring_steps_overlapped: usize,
}

impl SyncStats {
    /// Fraction of all-reduce progress hidden under backward, in `[0, 1]`.
    /// `0` when nothing could overlap (single rank, or no steps).
    pub fn overlap_fraction(&self) -> f64 {
        if self.ring_steps == 0 {
            0.0
        } else {
            self.ring_steps_overlapped as f64 / self.ring_steps as f64
        }
    }
}

/// Fills fixed-size buckets with ready gradients and drives their ring
/// all-reduces incrementally. One instance lives for one backward pass.
struct GradBucketer<'a, C: Communicator> {
    comm: &'a C,
    bucket_elems: usize,
    /// Element format each bucket's ring uses in flight.
    wire: WireDType,
    current: Vec<f32>,
    rings: Vec<RingAllreduce<C>>,
    /// Wall time spent polling in-flight rings from inside the backward
    /// hook, i.e. driving overlapped communication. Only accumulated while
    /// a trace is being recorded.
    poll_ns: u64,
}

impl<'a, C: Communicator> GradBucketer<'a, C> {
    fn new(comm: &'a C, bucket_bytes: usize, wire: WireDType) -> GradBucketer<'a, C> {
        // `bucket_bytes` is a *wire* budget: a 16-bit wire fits twice the
        // scalars per bucket, so fewer rings move the same gradient stream.
        let bucket_elems = (bucket_bytes / wire.size_bytes()).max(1);
        GradBucketer {
            comm,
            bucket_elems,
            wire,
            current: Vec::new(),
            rings: Vec::new(),
            poll_ns: 0,
        }
    }

    /// Append a ready gradient to the stream, launching every bucket it
    /// fills, then give in-flight rings a chance to advance.
    fn push(&mut self, grad: &[f32]) {
        let mut off = 0usize;
        while off < grad.len() {
            let take = (self.bucket_elems - self.current.len()).min(grad.len() - off);
            self.current.extend_from_slice(&grad[off..off + take]);
            off += take;
            if self.current.len() == self.bucket_elems {
                self.flush();
            }
        }
        if trace::enabled() {
            let t0 = std::time::Instant::now();
            self.poll();
            self.poll_ns += t0.elapsed().as_nanos() as u64;
        } else {
            self.poll();
        }
    }

    /// Launch the current (possibly partial) bucket.
    fn flush(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let data = std::mem::take(&mut self.current);
        let tag = bucket_tag(self.rings.len());
        self.rings.push(RingAllreduce::start_wire(
            self.comm,
            data,
            ReduceOp::Sum,
            tag,
            self.wire,
        ));
    }

    /// Advance every in-flight ring without blocking; true when all done.
    fn poll(&mut self) -> bool {
        let mut all_done = true;
        for ring in self.rings.iter_mut() {
            if !ring.poll(self.comm) {
                all_done = false;
            }
        }
        all_done
    }

    /// Ring steps completed so far, across all buckets.
    fn steps_done(&self) -> usize {
        self.rings.iter().map(|r| r.steps_done()).sum()
    }

    /// Total ring steps across all buckets launched so far.
    fn steps_total(&self) -> usize {
        self.rings.iter().map(|r| r.steps_total()).sum()
    }
}

/// Backward pass with bucketed, overlapped dense-gradient synchronization.
///
/// Equivalent to `model.backward(dlogits, comm)` followed by
/// [`sync_grads`], up to all-reduce summation order (buckets partition the
/// gradient stream differently than the monolithic flatten). Collective —
/// every rank must call it with the same `bucket_bytes`.
pub fn backward_and_sync_overlapped<C: Communicator>(
    model: &mut DistTransformer,
    dlogits: &Tensor,
    comm: &C,
    bucket_bytes: usize,
) -> SyncStats {
    backward_and_sync_overlapped_wire(model, dlogits, comm, bucket_bytes, WireDType::F32)
}

/// [`backward_and_sync_overlapped`] with an explicit wire format: every
/// bucket's ring packs each hop to `wire` (reductions still accumulate in
/// `f32`), and `bucket_bytes` budgets *wire* bytes — a 16-bit wire fits
/// twice the scalars per bucket. `WireDType::F32` is bit-identical to
/// [`backward_and_sync_overlapped`].
pub fn backward_and_sync_overlapped_wire<C: Communicator>(
    model: &mut DistTransformer,
    dlogits: &Tensor,
    comm: &C,
    bucket_bytes: usize,
    wire: WireDType,
) -> SyncStats {
    let r = comm.size() as f32;
    let mut bucketer = GradBucketer::new(comm, bucket_bytes, wire);
    let backward_span = trace::span(names::BACKWARD);
    model.backward_with_grad_ready(dlogits, comm, &mut |p| {
        bucketer.push(p.grad.as_slice());
    });
    // Everything that completed by now was hidden under backward compute.
    let overlapped = bucketer.steps_done();
    drop(backward_span);
    // The tail bucket only launches now: there is no compute left to hide
    // it behind, so its steps are exposed by construction.
    let _sync_span = trace::span(names::GRAD_SYNC);
    bucketer.flush();
    while !bucketer.poll() {
        std::thread::yield_now();
    }

    let mut stats = SyncStats {
        dense_scalars: 0,
        buckets: bucketer.rings.len(),
        ring_steps: bucketer.steps_total(),
        ring_steps_overlapped: overlapped,
    };
    if trace::enabled() {
        trace::count(names::RING_STEPS, stats.ring_steps as u64);
        trace::count(
            names::RING_STEPS_OVERLAPPED,
            stats.ring_steps_overlapped as u64,
        );
        trace::count(names::OVERLAP_POLL_NS, bucketer.poll_ns);
    }

    // Scatter the reduced stream back in the exact ready order it was
    // gathered in; parameters may straddle bucket boundaries.
    let inv = 1.0 / r;
    let mut buckets: Vec<Vec<f32>> = bucketer
        .rings
        .into_iter()
        .map(|ring| ring.into_data())
        .collect();
    for b in &mut buckets {
        stats.dense_scalars += b.len();
        for g in b.iter_mut() {
            *g *= inv;
        }
    }
    let mut bucket_idx = 0usize;
    let mut off = 0usize;
    model.visit_dense_params_ready_order(&mut |p| {
        let dst = p.grad.as_mut_slice();
        let mut written = 0usize;
        while written < dst.len() {
            let src = &buckets[bucket_idx];
            let take = (src.len() - off).min(dst.len() - written);
            dst[written..written + take].copy_from_slice(&src[off..off + take]);
            written += take;
            off += take;
            if off == src.len() {
                bucket_idx += 1;
                off = 0;
            }
        }
    });

    // Experts: rescale only.
    model.visit_expert_params(&mut |p| p.grad.scale(1.0 / r));

    stats
}

/// Debug/validation helper: confirm every rank holds identical dense
/// parameter *values* (they must, since updates are deterministic on
/// identical gradients). Returns the maximum absolute divergence from the
/// rank-0 replica.
///
/// Compares in fixed-size chunks instead of broadcasting the full flat
/// parameter vector at once, and every few chunks max-allreduces the
/// running divergence so all ranks can exit early (coherently) as soon as
/// any rank has proven a mismatch.
pub fn check_replica_consistency<C: Communicator>(model: &mut DistTransformer, comm: &C) -> f32 {
    const CHUNK: usize = 1 << 14;
    const CHECK_EVERY: usize = 8;

    let mut flat = Vec::new();
    model.visit_dense_params(&mut |p| flat.extend_from_slice(p.value.as_slice()));

    let mut local_max = 0.0f32;
    let mut since_check = 0usize;
    for chunk in flat.chunks(CHUNK) {
        let reference = broadcast(comm, 0, (comm.rank() == 0).then(|| chunk.to_vec()));
        local_max = chunk
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(local_max, f32::max);
        since_check += 1;
        if since_check == CHECK_EVERY {
            since_check = 0;
            // Collective early-exit: every rank sees the same global max
            // and takes the same branch, so the protocol stays in lockstep.
            let global = allreduce_recursive_doubling(comm, vec![local_max], ReduceOp::Max)[0];
            if global > 0.0 {
                return global;
            }
            local_max = 0.0;
        }
    }
    allreduce_recursive_doubling(comm, vec![local_max], ReduceOp::Max)[0]
}
