//! MoDa hybrid parallelism — the core contribution of the reproduced system.
//!
//! **MoDa** combines **Da**ta parallelism and **Mo**E expert parallelism in
//! one process group:
//!
//! * every rank holds a full replica of the *dense* parameters (embeddings,
//!   attention, layer norms, gates, LM head) and trains them data-parallel —
//!   each rank consumes a different micro-batch and gradients are averaged
//!   with a ring all-reduce;
//! * the *experts* of each MoE layer are **sharded**, never replicated:
//!   each expert lives on exactly one rank, chosen by a pluggable
//!   [`ExpertPlacement`] policy (round-robin, block-contiguous, or
//!   supernode-aware). Tokens are routed by the (replicated) gate and
//!   physically exchanged with an **all-to-all** — pairwise or
//!   hierarchical, the choice this reproduction ablates.
//!
//! Parameter count therefore scales with `R × experts-per-rank` while
//! per-rank compute and memory stay flat — this is what makes 174-trillion-
//! parameter training fit on 96,000 nodes.
//!
//! Modules:
//!
//! * [`decode`] — the batched expert-parallel decode step the serving
//!   path (`bagualu-serve`) builds continuous batching on,
//! * [`moe_dist`] — the distributed MoE layer (dispatch → expert compute →
//!   combine, with the exact mirror in backward),
//! * [`model_dist`] — the distributed transformer assembled from replicated
//!   dense layers and distributed MoE layers,
//! * [`placement`] — the expert↔rank mapping policies,
//! * [`sync`] — gradient synchronization (dense all-reduce averaging,
//!   expert gradient rescaling) and replica-consistency checks.

pub mod decode;
pub mod model_dist;
pub mod moe_dist;
pub mod placement;
pub mod sync;
pub mod zero;

pub use decode::{decode_step, KvProvider, VecKvBatch};
pub use model_dist::{DistBlock, DistFfn, DistTransformer};
pub use moe_dist::{A2aKind, DistMoELayer};
pub use placement::ExpertPlacement;
pub use sync::{
    backward_and_sync_overlapped, backward_and_sync_overlapped_wire, check_replica_consistency,
    sync_grads, sync_grads_wire, SyncStats,
};
pub use zero::ZeroAdam;
