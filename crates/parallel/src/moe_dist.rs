//! The distributed MoE layer: gate locally, exchange tokens with an
//! all-to-all, run the locally-resident experts, exchange results back.
//!
//! Expert placement is a policy, not an arithmetic convention: the layer
//! consults its [`ExpertPlacement`] for every owner/slot decision (see
//! [`crate::placement`] — round-robin, block-contiguous, or
//! supernode-aware). The backward pass mirrors the forward exchanges
//! exactly (the dispatch plan is cached), so each expert runs one forward
//! and one backward per step regardless of how many ranks fed it.

use crate::placement::ExpertPlacement;
use bagualu_comm::collectives::{alltoallv_hierarchical_wire, alltoallv_u32, alltoallv_wire};
use bagualu_comm::payload::WireDType;
use bagualu_comm::shm::Communicator;
use bagualu_model::ffn::FeedForward;
use bagualu_model::moe::gate::{Gate, Routing};
use bagualu_model::param::{HasParams, Param};
use bagualu_tensor::Tensor;
use bagualu_trace::{self as trace, names};

/// Which all-to-all algorithm moves the tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum A2aKind {
    /// Naive pairwise exchange (the baseline).
    Pairwise,
    /// Two-phase supernode-aware exchange (the optimized algorithm);
    /// `supernode_size` ranks form one supernode.
    Hierarchical { supernode_size: usize },
}

impl A2aKind {
    /// Check the algorithm against a world size. Hierarchical exchanges
    /// need a supernode size in `1..=nranks` that divides `nranks`; a bad
    /// size used to surface as an opaque collective failure deep in the
    /// exchange, so reject it up front with a clear message.
    pub fn validate(&self, nranks: usize) -> Result<(), String> {
        assert!(nranks > 0, "a2a needs at least one rank");
        if let A2aKind::Hierarchical { supernode_size } = *self {
            if supernode_size == 0 {
                return Err("Hierarchical a2a: supernode_size must be >= 1".into());
            }
            if supernode_size > nranks {
                return Err(format!(
                    "Hierarchical a2a: supernode_size {supernode_size} exceeds world size {nranks}"
                ));
            }
            if !nranks.is_multiple_of(supernode_size) {
                return Err(format!(
                    "Hierarchical a2a: supernode_size {supernode_size} must divide world size {nranks}"
                ));
            }
        }
        Ok(())
    }

    /// Supernode size of [`Hierarchical`](A2aKind::Hierarchical), 0 for
    /// [`Pairwise`](A2aKind::Pairwise).
    pub fn supernode_size(&self) -> usize {
        match *self {
            A2aKind::Hierarchical { supernode_size } => supernode_size,
            A2aKind::Pairwise => 0,
        }
    }

    /// Run the selected all-to-all with token payloads packed to `wire` in
    /// flight (`WireDType::F32` is the uncompressed baseline).
    fn run_wire<C: Communicator>(
        self,
        comm: &C,
        parts: Vec<Vec<f32>>,
        wire: WireDType,
    ) -> Vec<Vec<f32>> {
        match self {
            A2aKind::Pairwise => alltoallv_wire(comm, parts, wire),
            A2aKind::Hierarchical { supernode_size } => {
                alltoallv_hierarchical_wire(comm, parts, supernode_size, wire)
            }
        }
    }
}

/// A mixture-of-experts layer whose experts are sharded across ranks.
#[derive(Debug, Clone)]
pub struct DistMoELayer {
    /// The (replicated, data-parallel) router.
    pub gate: Gate,
    /// Global expert count.
    pub n_experts: usize,
    /// Experts resident on this rank: slot `l` holds global expert
    /// `placement.local_experts(rank, ..)[l]`.
    pub local_experts: Vec<FeedForward>,
    pub rank: usize,
    pub nranks: usize,
    pub a2a: A2aKind,
    /// Which rank owns which global expert (and at which local slot).
    pub placement: ExpertPlacement,
    /// Wire format for dispatch/combine token payloads (headers always
    /// travel as `u32` ids). `F32` by default; set via
    /// [`DistMoELayer::set_wire`] or `DistTransformer::set_wire_dtype`.
    pub wire: WireDType,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    routing: Routing,
    /// Per destination rank: assignment indices, in send order.
    send_idx: Vec<Vec<usize>>,
    /// Per local expert slot: origin `(src_rank, position_in_src_batch)` of
    /// each row it processed, in row order.
    origin: Vec<Vec<(usize, usize)>>,
    /// Tokens received from each source rank in the forward dispatch.
    recv_counts: Vec<usize>,
    /// Expert outputs as seen by this (source) rank, one row per assignment.
    assign_out: Tensor,
    x_shape: Vec<usize>,
}

impl DistMoELayer {
    /// Wrap a gate and this rank's expert shard. `local_experts[l]` must be
    /// the global expert `placement.local_experts(rank, n_experts, nranks)[l]`.
    pub fn new(
        gate: Gate,
        n_experts: usize,
        local_experts: Vec<FeedForward>,
        rank: usize,
        nranks: usize,
        a2a: A2aKind,
        placement: ExpertPlacement,
    ) -> DistMoELayer {
        assert_eq!(gate.n_experts(), n_experts);
        a2a.validate(nranks).expect("invalid a2a configuration");
        placement
            .validate(nranks)
            .expect("invalid expert placement");
        let expected = placement.local_count(rank, n_experts, nranks);
        assert_eq!(local_experts.len(), expected, "wrong expert shard size");
        DistMoELayer {
            gate,
            n_experts,
            local_experts,
            rank,
            nranks,
            a2a,
            placement,
            wire: WireDType::F32,
            cache: None,
        }
    }

    /// Select the wire format for this layer's dispatch/combine traffic.
    pub fn set_wire(&mut self, wire: WireDType) {
        self.wire = wire;
    }

    /// Owner rank of a global expert (consults the placement policy).
    pub fn owner(&self, expert: usize) -> usize {
        self.placement.owner(expert, self.n_experts, self.nranks)
    }

    /// Local slot of a global expert on its owner (consults the placement
    /// policy).
    pub fn slot(&self, expert: usize) -> usize {
        self.placement.slot(expert, self.n_experts, self.nranks)
    }

    /// Routing statistics of the last forward (this rank's local view).
    pub fn last_routing(&self) -> Option<&Routing> {
        self.cache.as_ref().map(|c| &c.routing)
    }

    /// Auxiliary balance loss of the last forward.
    pub fn last_aux_loss(&self) -> f32 {
        self.cache
            .as_ref()
            .map(|c| c.routing.aux_loss)
            .unwrap_or(0.0)
    }

    /// Forward over this rank's `[n_local, d]` micro-batch. Collective:
    /// every rank must call it in the same program position.
    pub fn forward<C: Communicator>(&mut self, x: &Tensor, comm: &C) -> Tensor {
        let routing = self.gate.forward(x);
        let (y, cache) = self.exchange(x, routing, comm);
        self.cache = Some(cache);
        y
    }

    /// Inference forward: route droplessly via [`Gate::route_infer`], run
    /// the exact dispatch/compute/combine exchange of
    /// [`forward`](Self::forward), and *discard* the backward cache. Collective —
    /// every rank must call it in the same program position, even with an
    /// empty `[0, d]` batch (a rank with no active sequences still joins
    /// the exchange so its peers' tokens can reach the experts it owns).
    ///
    /// Used by the serving decode path: same placement, same wire format,
    /// same a2a algorithm and trace spans as training, so locality-biased
    /// placement cuts per-token decode bytes exactly as it cuts training
    /// bytes. The gate cache, noise stream, and this layer's backward cache
    /// are untouched (the experts' small activation caches are overwritten,
    /// so do not interleave this between a training forward and backward).
    pub fn forward_infer<C: Communicator>(&mut self, x: &Tensor, comm: &C) -> Tensor {
        let routing = self.gate.route_infer(x);
        let saved = self.cache.take();
        let (y, _) = self.exchange(x, routing, comm);
        self.cache = saved;
        y
    }

    /// The collective dispatch → expert-compute → combine exchange shared
    /// by the training and inference forwards. Returns the combined output
    /// and the backward cache describing the exchange.
    fn exchange<C: Communicator>(
        &mut self,
        x: &Tensor,
        routing: Routing,
        comm: &C,
    ) -> (Tensor, Cache) {
        let d = x.cols();
        let r = comm.size();
        assert_eq!(r, self.nranks);

        // ---- Dispatch: bucket assignments by owner rank.
        let mut send_idx: Vec<Vec<usize>> = vec![Vec::new(); r];
        for (i, a) in routing.assignments.iter().enumerate() {
            send_idx[self.owner(a.expert)].push(i);
        }
        // Expert ids fit comfortably in 32 bits; a u32 header halves the
        // dispatch-metadata traffic relative to the old u64 channel.
        let hdr_parts: Vec<Vec<u32>> = send_idx
            .iter()
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| routing.assignments[i].expert as u32)
                    .collect()
            })
            .collect();
        let data_parts: Vec<Vec<f32>> = send_idx
            .iter()
            .map(|idxs| {
                let mut buf = Vec::with_capacity(idxs.len() * d);
                for &i in idxs {
                    buf.extend_from_slice(x.row(routing.assignments[i].token));
                }
                buf
            })
            .collect();
        let (hdrs, datas) = {
            let _span = trace::span(names::A2A_DISPATCH);
            let hdrs = alltoallv_u32(comm, hdr_parts);
            let datas = self.a2a.run_wire(comm, data_parts, self.wire);
            (hdrs, datas)
        };

        // ---- Group received tokens by local expert slot.
        let n_slots = self.local_experts.len();
        let mut slot_inputs: Vec<Vec<f32>> = vec![Vec::new(); n_slots];
        let mut origin: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_slots];
        let mut recv_counts = vec![0usize; r];
        for src in 0..r {
            let hdr = &hdrs[src];
            let data = &datas[src];
            assert_eq!(data.len(), hdr.len() * d, "dispatch data/header mismatch");
            recv_counts[src] = hdr.len();
            for (pos, &e) in hdr.iter().enumerate() {
                let e = e as usize;
                assert_eq!(self.owner(e), self.rank, "token for expert {e} misrouted");
                let slot = self.slot(e);
                slot_inputs[slot].extend_from_slice(&data[pos * d..(pos + 1) * d]);
                origin[slot].push((src, pos));
            }
        }

        // ---- Expert compute.
        let mut slot_outputs = Vec::with_capacity(n_slots);
        for (slot, input) in slot_inputs.into_iter().enumerate() {
            let rows = origin[slot].len();
            let xe = Tensor::from_vec(input, &[rows, d]);
            slot_outputs.push(self.local_experts[slot].forward(&xe));
        }

        // ---- Combine: return results to their source ranks, in the
        // position order of the original dispatch.
        let mut reply: Vec<Vec<f32>> = (0..r)
            .map(|src| vec![0.0f32; recv_counts[src] * d])
            .collect();
        for (slot, orig) in origin.iter().enumerate() {
            for (row, &(src, pos)) in orig.iter().enumerate() {
                reply[src][pos * d..(pos + 1) * d].copy_from_slice(slot_outputs[slot].row(row));
            }
        }
        let replies = {
            let _span = trace::span(names::A2A_COMBINE);
            self.a2a.run_wire(comm, reply, self.wire)
        };

        let n_assign = routing.assignments.len();
        let mut assign_out = Tensor::zeros(&[n_assign, d]);
        let mut y = Tensor::zeros(x.shape());
        for (dest, idxs) in send_idx.iter().enumerate() {
            for (j, &ai) in idxs.iter().enumerate() {
                let a = routing.assignments[ai];
                let out_row = &replies[dest][j * d..(j + 1) * d];
                assign_out.row_mut(ai).copy_from_slice(out_row);
                let dst = y.row_mut(a.token);
                for (o, &v) in dst.iter_mut().zip(out_row) {
                    *o += a.weight * v;
                }
            }
        }

        let cache = Cache {
            routing,
            send_idx,
            origin,
            recv_counts,
            assign_out,
            x_shape: x.shape().to_vec(),
        };
        (y, cache)
    }

    /// Backward over this rank's `[n_local, d]` upstream gradient.
    /// Collective, mirroring the forward exchanges.
    pub fn backward<C: Communicator>(&mut self, dy: &Tensor, comm: &C) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("DistMoELayer::backward before forward");
        let d = dy.cols();
        let r = comm.size();
        assert_eq!(dy.shape(), &cache.x_shape[..]);
        let routing = &cache.routing;

        // ---- Combine-backward: dweights stay local; dY rows travel to the
        // expert owners along the cached dispatch plan.
        let mut dweights = vec![0.0f32; routing.assignments.len()];
        let dsend: Vec<Vec<f32>> = cache
            .send_idx
            .iter()
            .map(|idxs| {
                let mut buf = Vec::with_capacity(idxs.len() * d);
                for &ai in idxs {
                    let a = routing.assignments[ai];
                    let dyr = dy.row(a.token);
                    dweights[ai] = dyr
                        .iter()
                        .zip(cache.assign_out.row(ai))
                        .map(|(g, v)| g * v)
                        .sum();
                    buf.extend(dyr.iter().map(|&g| a.weight * g));
                }
                buf
            })
            .collect();
        let dys = {
            // Same direction as the forward dispatch: dY rows travel to the
            // expert owners.
            let _span = trace::span(names::A2A_DISPATCH);
            self.a2a.run_wire(comm, dsend, self.wire)
        };

        // ---- Expert backward, rows in forward order.
        let mut dreply: Vec<Vec<f32>> = (0..r)
            .map(|src| vec![0.0f32; cache.recv_counts[src] * d])
            .collect();
        for (slot, orig) in cache.origin.iter().enumerate() {
            let mut dye = Tensor::zeros(&[orig.len(), d]);
            for (row, &(src, pos)) in orig.iter().enumerate() {
                dye.row_mut(row)
                    .copy_from_slice(&dys[src][pos * d..(pos + 1) * d]);
            }
            let dxe = self.local_experts[slot].backward(&dye);
            for (row, &(src, pos)) in orig.iter().enumerate() {
                dreply[src][pos * d..(pos + 1) * d].copy_from_slice(dxe.row(row));
            }
        }
        let dxs = {
            let _span = trace::span(names::A2A_COMBINE);
            self.a2a.run_wire(comm, dreply, self.wire)
        };

        // ---- Scatter input gradients back to tokens (weights already
        // folded in on the way out).
        let mut dx = Tensor::zeros(dy.shape());
        for (dest, idxs) in cache.send_idx.iter().enumerate() {
            for (j, &ai) in idxs.iter().enumerate() {
                let a = routing.assignments[ai];
                let src_row = &dxs[dest][j * d..(j + 1) * d];
                let dst = dx.row_mut(a.token);
                for (o, &g) in dst.iter_mut().zip(src_row) {
                    *o += g;
                }
            }
        }

        // ---- Gate path (local).
        let dx_gate = self.gate.backward(routing, &dweights);
        dx.add_assign(&dx_gate);
        dx
    }

    /// Visit only the expert parameters (sharded — excluded from the dense
    /// all-reduce, rescaled instead).
    pub fn visit_expert_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for e in &mut self.local_experts {
            e.visit_params(f);
        }
    }

    /// Visit only the gate parameters (replicated — part of the dense
    /// all-reduce).
    pub fn visit_gate_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gate.visit_params(f);
    }
}

impl HasParams for DistMoELayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gate.visit_params(f);
        for e in &mut self.local_experts {
            e.visit_params(f);
        }
    }
}
