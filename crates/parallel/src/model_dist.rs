//! The distributed transformer: replicated dense layers + sharded experts.
//!
//! Construction goes through a *local* [`Transformer`] so that a
//! single-rank run and an `R`-rank run start from bit-identical weights —
//! the semantic-equivalence tests rely on this, and it mirrors how the real
//! system deterministically seeds every rank.

use crate::moe_dist::{A2aKind, DistMoELayer};
use crate::placement::ExpertPlacement;
use bagualu_comm::shm::Communicator;
use bagualu_model::attention::MultiHeadAttention;
use bagualu_model::config::ModelConfig;
use bagualu_model::embedding::Embedding;
use bagualu_model::ffn::FeedForward;
use bagualu_model::layernorm::LayerNorm;
use bagualu_model::linear::Linear;
use bagualu_model::loss::cross_entropy;
use bagualu_model::param::{HasParams, Param};
use bagualu_model::transformer::{BlockFfn, StepStats, Transformer};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// FFN of a distributed block.
#[derive(Debug, Clone)]
pub enum DistFfn {
    Dense(FeedForward),
    MoE(DistMoELayer),
}

/// One decoder block of the distributed model.
#[derive(Debug, Clone)]
pub struct DistBlock {
    pub ln1: LayerNorm,
    pub attn: MultiHeadAttention,
    pub ln2: LayerNorm,
    pub ffn: DistFfn,
}

impl DistBlock {
    pub fn forward<C: Communicator>(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        comm: &C,
    ) -> Tensor {
        let a = self.ln1.forward(x);
        let a = self.attn.forward(&a, batch, seq);
        let mut h = x.clone();
        h.add_assign(&a);

        let f = self.ln2.forward(&h);
        let f = match &mut self.ffn {
            DistFfn::Dense(ffn) => ffn.forward(&f),
            DistFfn::MoE(moe) => moe.forward(&f, comm),
        };
        let mut y = h;
        y.add_assign(&f);
        y
    }

    pub fn backward<C: Communicator>(&mut self, dy: &Tensor, comm: &C) -> Tensor {
        self.backward_with_grad_ready(dy, comm, &mut |_| {})
    }

    /// Backward that fires `on_ready` on each replicated parameter as soon
    /// as its gradient is final — the hook the overlapped bucketed
    /// all-reduce hangs off. Expert parameters are *not* announced (they
    /// are sharded, never all-reduced).
    pub fn backward_with_grad_ready<C: Communicator>(
        &mut self,
        dy: &Tensor,
        comm: &C,
        on_ready: &mut dyn FnMut(&mut Param),
    ) -> Tensor {
        let df = match &mut self.ffn {
            DistFfn::Dense(ffn) => {
                let d = ffn.backward(dy);
                ffn.visit_params(on_ready);
                d
            }
            DistFfn::MoE(moe) => {
                let d = moe.backward(dy, comm);
                moe.visit_gate_params(on_ready);
                d
            }
        };
        let mut dh = self.ln2.backward(&df);
        self.ln2.visit_params(on_ready);
        dh.add_assign(dy);

        let da = self.attn.backward(&dh);
        self.attn.visit_params(on_ready);
        let mut dx = self.ln1.backward(&da);
        self.ln1.visit_params(on_ready);
        dx.add_assign(&dh);
        dx
    }

    pub fn aux_loss(&self) -> f32 {
        match &self.ffn {
            DistFfn::Dense(_) => 0.0,
            DistFfn::MoE(moe) => moe.last_aux_loss(),
        }
    }
}

/// The MoDa-parallel transformer held by one rank.
#[derive(Debug, Clone)]
pub struct DistTransformer {
    pub cfg: ModelConfig,
    pub rank: usize,
    pub nranks: usize,
    pub tok: Embedding,
    pub pos: Embedding,
    pub blocks: Vec<DistBlock>,
    pub ln_f: LayerNorm,
    pub head: Linear,
}

impl DistTransformer {
    /// Shard a fully materialized local model with the default
    /// round-robin placement (see [`Self::from_local_placed`]).
    pub fn from_local(
        local: &Transformer,
        rank: usize,
        nranks: usize,
        a2a: A2aKind,
    ) -> DistTransformer {
        Self::from_local_placed(local, rank, nranks, a2a, ExpertPlacement::RoundRobin)
    }

    /// Shard a fully materialized local model: dense layers are cloned
    /// (replicated); each MoE block keeps the experts `placement` assigns
    /// to this rank, stored in slot order.
    pub fn from_local_placed(
        local: &Transformer,
        rank: usize,
        nranks: usize,
        a2a: A2aKind,
        placement: ExpertPlacement,
    ) -> DistTransformer {
        assert!(rank < nranks);
        placement
            .validate(nranks)
            .expect("invalid expert placement");
        let blocks = local
            .blocks
            .iter()
            .map(|b| {
                let ffn = match &b.ffn {
                    BlockFfn::Dense(f) => DistFfn::Dense(f.clone()),
                    BlockFfn::MoE(m) => {
                        let n_experts = m.n_experts();
                        let shard: Vec<FeedForward> = placement
                            .local_experts(rank, n_experts, nranks)
                            .into_iter()
                            .map(|e| m.experts[e].clone())
                            .collect();
                        DistFfn::MoE(DistMoELayer::new(
                            m.router
                                .as_flat()
                                .expect(
                                    "MoDa runtime requires the flat gate; the two-level \
                                         router is a single-rank feature",
                                )
                                .clone(),
                            n_experts,
                            shard,
                            rank,
                            nranks,
                            a2a,
                            placement,
                        ))
                    }
                };
                DistBlock {
                    ln1: b.ln1.clone(),
                    attn: b.attn.clone(),
                    ln2: b.ln2.clone(),
                    ffn,
                }
            })
            .collect();
        let mut dist = DistTransformer {
            cfg: local.cfg,
            rank,
            nranks,
            tok: local.tok.clone(),
            pos: local.pos.clone(),
            blocks,
            ln_f: local.ln_f.clone(),
            head: local.head.clone(),
        };
        // A freshly sharded model starts with clean gradient accumulators,
        // whatever state the source model was in.
        dist.zero_grad();
        dist
    }

    /// Build directly from a seed with round-robin placement (see
    /// [`Self::new_placed`]).
    pub fn new(
        cfg: ModelConfig,
        seed: u64,
        rank: usize,
        nranks: usize,
        a2a: A2aKind,
    ) -> DistTransformer {
        Self::new_placed(cfg, seed, rank, nranks, a2a, ExpertPlacement::RoundRobin)
    }

    /// Build directly from a seed (all ranks derive identical dense weights
    /// and consistent expert shards under the given placement).
    pub fn new_placed(
        cfg: ModelConfig,
        seed: u64,
        rank: usize,
        nranks: usize,
        a2a: A2aKind,
        placement: ExpertPlacement,
    ) -> DistTransformer {
        let mut rng = Rng::seed_from(seed);
        let local = Transformer::new(cfg, &mut rng);
        Self::from_local_placed(&local, rank, nranks, a2a, placement)
    }

    /// The expert placement every MoE block uses (round-robin when the
    /// model has no MoE blocks).
    pub fn placement(&self) -> ExpertPlacement {
        self.blocks
            .iter()
            .find_map(|b| match &b.ffn {
                DistFfn::MoE(m) => Some(m.placement),
                DistFfn::Dense(_) => None,
            })
            .unwrap_or(ExpertPlacement::RoundRobin)
    }

    /// Give every MoE block's gate a supernode-locality bias: selection
    /// scores of experts co-resident in this rank's supernode get a
    /// log-space bonus of `bias` (0 disables — bit-identical to no bias).
    /// The combine weights stay the clean probabilities, so the usual
    /// auxiliary balance loss still sees (and corrects) the skew.
    pub fn set_locality_bias(&mut self, bias: f32, supernode_size: usize) {
        let nranks = self.nranks;
        let rank = self.rank;
        for b in &mut self.blocks {
            if let DistFfn::MoE(moe) = &mut b.ffn {
                let mask = moe
                    .placement
                    .local_mask(rank, moe.n_experts, nranks, supernode_size);
                moe.gate.set_locality(bias, mask);
            }
        }
    }

    /// Select the wire format for every MoE block's dispatch/combine
    /// all-to-all traffic (the dense gradient wire is chosen separately at
    /// the sync call sites). `WireDType::F32` is the lossless default.
    pub fn set_wire_dtype(&mut self, wire: bagualu_comm::WireDType) {
        for b in &mut self.blocks {
            if let DistFfn::MoE(moe) = &mut b.ffn {
                moe.set_wire(wire);
            }
        }
    }

    /// Number of experts this rank owns per MoE block.
    pub fn local_experts_per_block(&self) -> usize {
        self.blocks
            .iter()
            .find_map(|b| match &b.ffn {
                DistFfn::MoE(m) => Some(m.local_experts.len()),
                DistFfn::Dense(_) => None,
            })
            .unwrap_or(0)
    }

    /// Forward over this rank's micro-batch. Collective.
    pub fn forward<C: Communicator>(
        &mut self,
        tokens: &[usize],
        batch: usize,
        seq: usize,
        comm: &C,
    ) -> Tensor {
        assert_eq!(tokens.len(), batch * seq);
        assert!(seq <= self.cfg.max_seq);
        let mut x = self.tok.forward(tokens);
        if !self.cfg.rope {
            let pos_ids: Vec<usize> = (0..batch * seq).map(|i| i % seq).collect();
            x.add_assign(&self.pos.forward(&pos_ids));
        }
        for b in &mut self.blocks {
            x = b.forward(&x, batch, seq, comm);
        }
        let x = self.ln_f.forward(&x);
        self.head.forward(&x)
    }

    /// Backward from `dlogits`. Collective.
    pub fn backward<C: Communicator>(&mut self, dlogits: &Tensor, comm: &C) {
        self.backward_with_grad_ready(dlogits, comm, &mut |_| {});
    }

    /// Backward that announces each replicated parameter to `on_ready` the
    /// moment its gradient is final, in reverse visit order (head first,
    /// embeddings last). [`Self::visit_dense_params_ready_order`] replays
    /// exactly this sequence, which is what lets the overlapped sync
    /// scatter reduced buckets back without bookkeeping per parameter.
    pub fn backward_with_grad_ready<C: Communicator>(
        &mut self,
        dlogits: &Tensor,
        comm: &C,
        on_ready: &mut dyn FnMut(&mut Param),
    ) {
        let dx = self.head.backward(dlogits);
        self.head.visit_params(on_ready);
        let mut dx = self.ln_f.backward(&dx);
        self.ln_f.visit_params(on_ready);
        for b in self.blocks.iter_mut().rev() {
            dx = b.backward_with_grad_ready(&dx, comm, on_ready);
        }
        self.tok.backward(&dx);
        self.tok.visit_params(on_ready);
        if !self.cfg.rope {
            self.pos.backward(&dx);
            self.pos.visit_params(on_ready);
        }
    }

    /// Sum of auxiliary balance losses (this rank's local view).
    pub fn aux_loss(&self) -> f32 {
        self.blocks.iter().map(|b| b.aux_loss()).sum()
    }

    /// One forward + loss + backward over this rank's micro-batch.
    /// Gradients are left unsynchronized — call
    /// [`crate::sync::sync_grads`] before the optimizer step.
    pub fn train_batch<C: Communicator>(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
        comm: &C,
    ) -> StepStats {
        let logits = self.forward(tokens, batch, seq, comm);
        let (ce, dlogits) = cross_entropy(&logits, targets);
        let aux = self.aux_loss();
        self.backward(&dlogits, comm);
        StepStats {
            ce_loss: ce,
            aux_loss: aux,
            tokens: tokens.len(),
        }
    }

    /// Visit the replicated (dense) parameters only — the set the
    /// data-parallel all-reduce covers. Order is identical on every rank.
    pub fn visit_dense_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.visit_params(f);
        if !self.cfg.rope {
            self.pos.visit_params(f);
        }
        for b in &mut self.blocks {
            b.ln1.visit_params(f);
            b.attn.visit_params(f);
            b.ln2.visit_params(f);
            match &mut b.ffn {
                DistFfn::Dense(ffn) => ffn.visit_params(f),
                DistFfn::MoE(moe) => moe.visit_gate_params(f),
            }
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }

    /// Visit the replicated parameters in **gradient-ready order** — the
    /// order [`Self::backward_with_grad_ready`] announces them (reverse of
    /// [`Self::visit_dense_params`] at the unit level). Identical on every
    /// rank.
    pub fn visit_dense_params_ready_order(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.head.visit_params(f);
        self.ln_f.visit_params(f);
        for b in self.blocks.iter_mut().rev() {
            match &mut b.ffn {
                DistFfn::Dense(ffn) => ffn.visit_params(f),
                DistFfn::MoE(moe) => moe.visit_gate_params(f),
            }
            b.ln2.visit_params(f);
            b.attn.visit_params(f);
            b.ln1.visit_params(f);
        }
        self.tok.visit_params(f);
        if !self.cfg.rope {
            self.pos.visit_params(f);
        }
    }

    /// Visit the sharded expert parameters only.
    pub fn visit_expert_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in &mut self.blocks {
            if let DistFfn::MoE(moe) = &mut b.ffn {
                moe.visit_expert_params(f);
            }
        }
    }
}

impl HasParams for DistTransformer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Dense first, then experts — a deterministic global order.
        self.visit_dense_params(f);
        self.visit_expert_params(f);
    }
}
