//! Expert placement: which rank owns which expert, as a first-class policy.
//!
//! The MoDa runtime shards the expert pool across ranks. *Where* each global
//! expert lives decides how much of the dispatch/combine all-to-all stays
//! inside a supernode (cheap links) versus crossing the global fabric —
//! `net::cost::alltoall_with_locality` and experiment E15 model exactly this
//! trade. [`ExpertPlacement`] makes the mapping a single consultable policy
//! so no call site hard-codes `e mod R` arithmetic:
//!
//! - [`ExpertPlacement::RoundRobin`] — expert `e` on rank `e mod R`, local
//!   slot `e div R`. The historical default; bit-identical to the
//!   pre-placement runtime.
//! - [`ExpertPlacement::Block`] — balanced contiguous ranges: rank `r` owns
//!   experts `[r·E/R, (r+1)·E/R)` (floor bounds, so uneven pools stay within
//!   one expert of balanced). Keeps related experts (e.g. per-domain blocks)
//!   on one rank.
//! - [`ExpertPlacement::Supernode`] — supernode-aware: consecutive expert
//!   blocks are pinned to supernodes of `supernode_size` ranks, and within a
//!   supernode its block round-robins across the member ranks. Tokens routed
//!   to "nearby" experts then travel intra-supernode, which is what the
//!   locality-biased gate (see `bagualu-model`'s `Gate::set_locality`)
//!   exploits.
//!
//! Every policy is a *bijection* between global experts and `(rank, slot)`
//! pairs with the same per-rank shard size (`E/R` when divisible), so
//! policies can be swapped without touching shard-allocation logic. The
//! trainer persists the policy in checkpoints; restoring under a different
//! policy is a hard error (the shards on disk would silently belong to the
//! wrong experts otherwise).

use std::fmt;
use std::str::FromStr;

/// Policy mapping global experts to owning ranks and local slots.
///
/// See the [module docs](self) for the semantics of each variant. All
/// methods are pure functions of `(policy, n_experts, nranks)`; the policy
/// carries no per-run state and is `Copy` so it can live in `TrainConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpertPlacement {
    /// Expert `e` on rank `e mod R`, slot `e div R` (historical default).
    #[default]
    RoundRobin,
    /// Rank `r` owns the contiguous range `[r·E/R, (r+1)·E/R)`.
    Block,
    /// Contiguous expert blocks pinned per supernode of `supernode_size`
    /// ranks; round-robin across member ranks within each supernode.
    Supernode {
        /// Ranks per supernode; must be in `1..=nranks` and divide `nranks`.
        supernode_size: usize,
    },
    /// Straggler-relief placement: round-robin, except the `victim` rank
    /// keeps only the first half of its round-robin shard and sheds the
    /// rest, spread round-robin across the other ranks. The degradation
    /// layer switches a run to this policy (at a checkpoint boundary) when
    /// the online straggler detector flags `victim`, halving the sick
    /// rank's expert compute while every expert stays owned exactly once.
    /// Deliberately *unbalanced* — the only policy that is — so
    /// [`ExpertPlacement::local_count`] must be consulted instead of `E/R`.
    Shed {
        /// Rank whose expert load is halved; must be `< nranks`.
        victim: usize,
    },
}

impl ExpertPlacement {
    /// Check the policy against a world size. Returns a descriptive error
    /// for unusable parameters (zero supernode, supernode larger than the
    /// world, non-dividing supernode size).
    pub fn validate(&self, nranks: usize) -> Result<(), String> {
        assert!(nranks > 0, "placement needs at least one rank");
        if let ExpertPlacement::Supernode { supernode_size } = *self {
            if supernode_size == 0 {
                return Err("Supernode placement: supernode_size must be >= 1".into());
            }
            if supernode_size > nranks {
                return Err(format!(
                    "Supernode placement: supernode_size {supernode_size} exceeds world size {nranks}"
                ));
            }
            if !nranks.is_multiple_of(supernode_size) {
                return Err(format!(
                    "Supernode placement: supernode_size {supernode_size} must divide world size {nranks}"
                ));
            }
        }
        if let ExpertPlacement::Shed { victim } = *self {
            if nranks < 2 {
                return Err("Shed placement: needs at least 2 ranks to shed load onto".into());
            }
            if victim >= nranks {
                return Err(format!(
                    "Shed placement: victim rank {victim} is outside the world of {nranks}"
                ));
            }
        }
        Ok(())
    }

    /// Rank that owns global expert `expert`.
    pub fn owner(&self, expert: usize, n_experts: usize, nranks: usize) -> usize {
        debug_assert!(expert < n_experts, "expert {expert} out of {n_experts}");
        match *self {
            ExpertPlacement::RoundRobin => expert % nranks,
            ExpertPlacement::Block => {
                // Inverse of the floor-bound ranges: the owner is the
                // largest r with r*E/R <= expert, i.e. floor((e*R + R - 1)/E)
                // clamped — computed directly to avoid a scan.
                let mut r = (expert * nranks + nranks - 1) / n_experts.max(1);
                r = r.min(nranks - 1);
                // Floor rounding can land near the boundary; walk to the
                // unique range containing `expert` (≤ 1 step when shards are
                // even, a few when some shards are empty).
                while expert < Self::block_start(r, n_experts, nranks) {
                    r -= 1;
                }
                while expert >= Self::block_start(r + 1, n_experts, nranks) {
                    r += 1;
                }
                r
            }
            ExpertPlacement::Supernode { supernode_size } => {
                // Supernode g owns the contiguous block that Block placement
                // would give to a "world" of nranks/supernode_size super-ranks;
                // within the block, experts round-robin over g's member ranks.
                let groups = nranks / supernode_size;
                let group = ExpertPlacement::Block.owner(expert, n_experts, groups);
                let within = expert - Self::block_start(group, n_experts, groups);
                group * supernode_size + within % supernode_size
            }
            ExpertPlacement::Shed { victim } => {
                let o = expert % nranks;
                if o != victim {
                    return o;
                }
                let rr_slot = expert / nranks;
                let keep = Self::shed_keep(victim, n_experts, nranks);
                if rr_slot < keep {
                    victim
                } else {
                    // Shed experts spread round-robin over the other R−1
                    // ranks, starting just past the victim so no single
                    // neighbor absorbs the whole load.
                    let s = rr_slot - keep;
                    (victim + 1 + s % (nranks - 1)) % nranks
                }
            }
        }
    }

    /// Local slot of global expert `expert` on its owning rank. Slots are
    /// dense: the owner's experts occupy slots `0..local_count(owner)` in
    /// ascending global-id order.
    pub fn slot(&self, expert: usize, n_experts: usize, nranks: usize) -> usize {
        debug_assert!(expert < n_experts, "expert {expert} out of {n_experts}");
        match *self {
            ExpertPlacement::RoundRobin => expert / nranks,
            ExpertPlacement::Block => {
                let r = self.owner(expert, n_experts, nranks);
                expert - Self::block_start(r, n_experts, nranks)
            }
            ExpertPlacement::Supernode { supernode_size } => {
                let groups = nranks / supernode_size;
                let group = ExpertPlacement::Block.owner(expert, n_experts, groups);
                let within = expert - Self::block_start(group, n_experts, groups);
                within / supernode_size
            }
            ExpertPlacement::Shed { .. } => {
                // Slots are dense in ascending global-id order; with the
                // shed redirection there is no closed form, so count the
                // same-owner experts below (E is small; this is cold path).
                let o = self.owner(expert, n_experts, nranks);
                (0..expert)
                    .filter(|&e| self.owner(e, n_experts, nranks) == o)
                    .count()
            }
        }
    }

    /// Global ids of the experts rank `rank` owns, in slot order (the slot
    /// of `local_experts(..)[i]` is `i`).
    pub fn local_experts(&self, rank: usize, n_experts: usize, nranks: usize) -> Vec<usize> {
        let mut out: Vec<usize> = (0..n_experts)
            .filter(|&e| self.owner(e, n_experts, nranks) == rank)
            .collect();
        // All policies assign slots in ascending global-id order, so the
        // filtered ascending list is already slot-ordered; assert it.
        debug_assert!(out
            .iter()
            .enumerate()
            .all(|(i, &e)| self.slot(e, n_experts, nranks) == i));
        out.shrink_to_fit();
        out
    }

    /// Number of experts rank `rank` owns.
    pub fn local_count(&self, rank: usize, n_experts: usize, nranks: usize) -> usize {
        match *self {
            ExpertPlacement::RoundRobin => {
                n_experts / nranks + usize::from(rank < n_experts % nranks)
            }
            _ => self.local_experts(rank, n_experts, nranks).len(),
        }
    }

    /// Supernode-locality mask: `mask[e]` is true when expert `e` lives in
    /// the same supernode (of `supernode_size` ranks) as `rank`. With
    /// `supernode_size == 0` (locality accounting disabled) every expert is
    /// considered remote.
    pub fn local_mask(
        &self,
        rank: usize,
        n_experts: usize,
        nranks: usize,
        supernode_size: usize,
    ) -> Vec<bool> {
        if supernode_size == 0 {
            return vec![false; n_experts];
        }
        (0..n_experts)
            .map(|e| self.owner(e, n_experts, nranks) / supernode_size == rank / supernode_size)
            .collect()
    }

    /// First expert of rank `r`'s contiguous block under [`Block`]
    /// (`ExpertPlacement::Block`) semantics: `r·E/R` with floor rounding.
    fn block_start(r: usize, n_experts: usize, nranks: usize) -> usize {
        r * n_experts / nranks
    }

    /// How many of its round-robin experts a [`Shed`](ExpertPlacement::Shed)
    /// victim keeps: half of its round-robin shard, floor-rounded.
    fn shed_keep(victim: usize, n_experts: usize, nranks: usize) -> usize {
        let rr = n_experts / nranks + usize::from(victim < n_experts % nranks);
        rr / 2
    }

    /// Short identifier used by the CLI, `Display`, and the checkpoint
    /// placement record (`0`/`1`/`2`/`3` policy ids).
    pub fn policy_id(&self) -> u32 {
        match self {
            ExpertPlacement::RoundRobin => 0,
            ExpertPlacement::Block => 1,
            ExpertPlacement::Supernode { .. } => 2,
            ExpertPlacement::Shed { .. } => 3,
        }
    }

    /// The supernode size carried by [`ExpertPlacement::Supernode`],
    /// 0 for the other policies.
    pub fn supernode_size(&self) -> usize {
        match *self {
            ExpertPlacement::Supernode { supernode_size } => supernode_size,
            _ => 0,
        }
    }

    /// The policy's scalar parameter as persisted in the checkpoint
    /// placement record: the supernode size for
    /// [`Supernode`](ExpertPlacement::Supernode), the victim rank for
    /// [`Shed`](ExpertPlacement::Shed), 0 otherwise. Inverse of
    /// [`from_policy_id`](Self::from_policy_id)'s second argument.
    pub fn param(&self) -> usize {
        match *self {
            ExpertPlacement::Supernode { supernode_size } => supernode_size,
            ExpertPlacement::Shed { victim } => victim,
            _ => 0,
        }
    }

    /// Reconstruct a policy from its checkpoint record fields (inverse of
    /// [`policy_id`](Self::policy_id) + [`param`](Self::param)).
    pub fn from_policy_id(id: u32, param: usize) -> Result<ExpertPlacement, String> {
        match id {
            0 => Ok(ExpertPlacement::RoundRobin),
            1 => Ok(ExpertPlacement::Block),
            2 => Ok(ExpertPlacement::Supernode {
                supernode_size: param,
            }),
            3 => Ok(ExpertPlacement::Shed { victim: param }),
            other => Err(format!("unknown placement policy id {other}")),
        }
    }
}

impl fmt::Display for ExpertPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ExpertPlacement::RoundRobin => write!(f, "roundrobin"),
            ExpertPlacement::Block => write!(f, "block"),
            ExpertPlacement::Supernode { supernode_size } => {
                write!(f, "supernode:{supernode_size}")
            }
            ExpertPlacement::Shed { victim } => write!(f, "shed:{victim}"),
        }
    }
}

impl FromStr for ExpertPlacement {
    type Err = String;

    /// Parse `roundrobin`, `block`, `supernode` (size inferred later from
    /// the topology) or `supernode:<s>`.
    fn from_str(s: &str) -> Result<ExpertPlacement, String> {
        match s {
            "roundrobin" | "round-robin" | "rr" => Ok(ExpertPlacement::RoundRobin),
            "block" => Ok(ExpertPlacement::Block),
            "supernode" => Ok(ExpertPlacement::Supernode { supernode_size: 0 }),
            other => {
                if let Some(sz) = other.strip_prefix("supernode:") {
                    let supernode_size: usize = sz
                        .parse()
                        .map_err(|_| format!("bad supernode size {sz:?}"))?;
                    Ok(ExpertPlacement::Supernode { supernode_size })
                } else if let Some(v) = other.strip_prefix("shed:") {
                    let victim: usize = v.parse().map_err(|_| format!("bad shed victim {v:?}"))?;
                    Ok(ExpertPlacement::Shed { victim })
                } else {
                    Err(format!(
                        "unknown placement {other:?} (want roundrobin|block|supernode[:S]|shed:V)"
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policies(nranks: usize) -> Vec<ExpertPlacement> {
        let mut out = vec![ExpertPlacement::RoundRobin, ExpertPlacement::Block];
        for s in 1..=nranks {
            if nranks.is_multiple_of(s) {
                out.push(ExpertPlacement::Supernode { supernode_size: s });
            }
        }
        out
    }

    #[test]
    fn every_policy_is_a_balanced_bijection() {
        for nranks in [1, 2, 3, 4, 6, 8] {
            for n_experts in [nranks, 2 * nranks, 4 * nranks, 7 * nranks] {
                for p in policies(nranks) {
                    p.validate(nranks).unwrap();
                    let mut seen = vec![false; n_experts];
                    for r in 0..nranks {
                        let locals = p.local_experts(r, n_experts, nranks);
                        assert_eq!(locals.len(), n_experts / nranks, "{p} r={r}");
                        assert_eq!(locals.len(), p.local_count(r, n_experts, nranks));
                        for (i, &e) in locals.iter().enumerate() {
                            assert_eq!(p.owner(e, n_experts, nranks), r, "{p} e={e}");
                            assert_eq!(p.slot(e, n_experts, nranks), i, "{p} e={e}");
                            assert!(!seen[e], "{p}: expert {e} owned twice");
                            seen[e] = true;
                        }
                    }
                    assert!(seen.iter().all(|&s| s), "{p}: some expert unowned");
                }
            }
        }
    }

    #[test]
    fn round_robin_matches_historical_arithmetic() {
        let p = ExpertPlacement::RoundRobin;
        for (e, n, r) in [(0, 8, 4), (5, 8, 4), (7, 8, 4), (11, 12, 3)] {
            assert_eq!(p.owner(e, n, r), e % r);
            assert_eq!(p.slot(e, n, r), e / r);
        }
    }

    #[test]
    fn block_is_contiguous_per_rank() {
        let p = ExpertPlacement::Block;
        for (n_experts, nranks) in [(8, 4), (12, 3), (16, 8), (9, 3)] {
            for r in 0..nranks {
                let locals = p.local_experts(r, n_experts, nranks);
                for w in locals.windows(2) {
                    assert_eq!(w[1], w[0] + 1, "block shard not contiguous");
                }
            }
        }
    }

    #[test]
    fn supernode_blocks_stay_inside_one_supernode() {
        // Each contiguous expert block must map entirely to one supernode,
        // so a locality-biased gate can keep traffic inside it.
        let s = 2;
        let (n_experts, nranks) = (16, 8);
        let p = ExpertPlacement::Supernode { supernode_size: s };
        let per_group = n_experts / (nranks / s);
        for e in 0..n_experts {
            let group = p.owner(e, n_experts, nranks) / s;
            assert_eq!(group, e / per_group, "expert {e} in wrong supernode");
        }
    }

    #[test]
    fn supernode_of_world_size_equals_round_robin_grouping() {
        // One supernode spanning the whole world: block = everything,
        // round-robin within = plain round-robin.
        let p = ExpertPlacement::Supernode { supernode_size: 4 };
        for e in 0..16 {
            assert_eq!(
                p.owner(e, 16, 4),
                ExpertPlacement::RoundRobin.owner(e, 16, 4)
            );
        }
    }

    #[test]
    fn local_mask_marks_own_supernode_only() {
        let p = ExpertPlacement::Supernode { supernode_size: 2 };
        let (n_experts, nranks) = (8, 4);
        let mask = p.local_mask(0, n_experts, nranks, 2);
        for (e, &m) in mask.iter().enumerate() {
            assert_eq!(m, p.owner(e, n_experts, nranks) / 2 == 0);
        }
        assert!(mask.iter().any(|&m| m) && mask.iter().any(|&m| !m));
        // Disabled accounting: all remote.
        assert!(p.local_mask(0, n_experts, nranks, 0).iter().all(|&m| !m));
    }

    #[test]
    fn shed_is_a_bijection_that_halves_the_victims_load() {
        for nranks in [2, 3, 4, 8] {
            for n_experts in [nranks, 2 * nranks, 4 * nranks, 7 * nranks] {
                for victim in 0..nranks {
                    let p = ExpertPlacement::Shed { victim };
                    p.validate(nranks).unwrap();
                    let rr = ExpertPlacement::RoundRobin;
                    let mut seen = vec![false; n_experts];
                    let mut total = 0;
                    for r in 0..nranks {
                        let locals = p.local_experts(r, n_experts, nranks);
                        assert_eq!(locals.len(), p.local_count(r, n_experts, nranks));
                        total += locals.len();
                        for (i, &e) in locals.iter().enumerate() {
                            assert_eq!(p.owner(e, n_experts, nranks), r, "{p} e={e}");
                            assert_eq!(p.slot(e, n_experts, nranks), i, "{p} e={e}");
                            assert!(!seen[e], "{p}: expert {e} owned twice");
                            seen[e] = true;
                        }
                    }
                    assert_eq!(total, n_experts);
                    assert!(seen.iter().all(|&s| s), "{p}: some expert unowned");
                    // The victim keeps exactly half (floor) of its
                    // round-robin shard; everyone else keeps at least
                    // their round-robin shard.
                    let rr_v = rr.local_count(victim, n_experts, nranks);
                    assert_eq!(p.local_count(victim, n_experts, nranks), rr_v / 2);
                    for r in (0..nranks).filter(|&r| r != victim) {
                        assert!(
                            p.local_count(r, n_experts, nranks)
                                >= rr.local_count(r, n_experts, nranks)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shed_keeps_non_victim_ownership_unchanged() {
        // Only experts round-robin-owned by the victim move; every other
        // expert stays exactly where round-robin put it, so migration
        // traffic is bounded by the victim's shard.
        let (n_experts, nranks, victim) = (16, 4, 2);
        let p = ExpertPlacement::Shed { victim };
        for e in 0..n_experts {
            if e % nranks != victim {
                assert_eq!(p.owner(e, n_experts, nranks), e % nranks);
            } else {
                assert_ne!(
                    p.owner(e, n_experts, nranks) == victim,
                    e / nranks >= ExpertPlacement::shed_keep(victim, n_experts, nranks)
                );
            }
        }
    }

    #[test]
    fn shed_spreads_load_across_all_other_ranks() {
        // 8 shed experts over 3 receiving ranks: no receiver absorbs more
        // than ceil(8/3) = 3 extra experts.
        let (n_experts, nranks, victim) = (32, 4, 1);
        let p = ExpertPlacement::Shed { victim };
        let rr = ExpertPlacement::RoundRobin;
        for r in (0..nranks).filter(|&r| r != victim) {
            let extra = p.local_count(r, n_experts, nranks) - rr.local_count(r, n_experts, nranks);
            assert!(extra <= 3, "rank {r} absorbed {extra} experts");
        }
    }

    #[test]
    fn validate_rejects_bad_shed() {
        let p = ExpertPlacement::Shed { victim: 4 };
        assert!(p.validate(4).unwrap_err().contains("outside the world"));
        let p = ExpertPlacement::Shed { victim: 0 };
        assert!(p.validate(1).unwrap_err().contains("at least 2 ranks"));
        assert!(p.validate(2).is_ok());
    }

    #[test]
    fn shed_round_trips_through_id_and_string() {
        let p = ExpertPlacement::Shed { victim: 3 };
        assert_eq!(p.to_string(), "shed:3");
        assert_eq!("shed:3".parse::<ExpertPlacement>().unwrap(), p);
        assert_eq!(
            ExpertPlacement::from_policy_id(p.policy_id(), p.param()).unwrap(),
            p
        );
        assert!("shed:x".parse::<ExpertPlacement>().is_err());
    }

    #[test]
    fn validate_rejects_bad_supernodes() {
        let zero = ExpertPlacement::Supernode { supernode_size: 0 };
        assert!(zero.validate(4).unwrap_err().contains(">= 1"));
        let big = ExpertPlacement::Supernode { supernode_size: 8 };
        assert!(big.validate(4).unwrap_err().contains("exceeds world size"));
        let odd = ExpertPlacement::Supernode { supernode_size: 3 };
        assert!(odd.validate(4).unwrap_err().contains("must divide"));
        assert!(ExpertPlacement::RoundRobin.validate(1).is_ok());
    }

    #[test]
    fn parse_and_display_round_trip() {
        for p in [
            ExpertPlacement::RoundRobin,
            ExpertPlacement::Block,
            ExpertPlacement::Supernode { supernode_size: 4 },
        ] {
            assert_eq!(p.to_string().parse::<ExpertPlacement>().unwrap(), p);
            let rt = ExpertPlacement::from_policy_id(p.policy_id(), p.supernode_size()).unwrap();
            assert_eq!(rt, p);
        }
        assert_eq!(
            "supernode".parse::<ExpertPlacement>().unwrap(),
            ExpertPlacement::Supernode { supernode_size: 0 }
        );
        assert!("diagonal".parse::<ExpertPlacement>().is_err());
        assert!(ExpertPlacement::from_policy_id(9, 0).is_err());
    }
}
