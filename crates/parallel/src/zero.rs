//! ZeRO-style sharded optimizer for the dense (replicated) parameters.
//!
//! Replicated data parallelism stores the full Adam state (master weight +
//! two moments = 16 B/param) on *every* rank. At brain scale that is tens
//! of replicated gigabytes per node (see experiment E7). This optimizer
//! shards it:
//!
//! 1. dense gradients are **reduce-scattered** (instead of all-reduced), so
//!    each rank receives only its `1/R` shard, already summed,
//! 2. the rank updates its shard of FP32 master weights with Adam,
//! 3. updated shard *values* are **all-gathered** and written back into the
//!    replicated working parameters.
//!
//! The update is numerically identical to replicated Adam (same reduced
//! gradients, same math, different location), which the tests pin down.
//! Expert parameters are untouched by the sharding — they are already
//! unique per rank — and are updated by a private full Adam after the
//! standard `1/R` rescale.

use crate::model_dist::DistTransformer;
use bagualu_comm::collectives::{allgather, reduce_scatter, ReduceOp};
use bagualu_comm::shm::Communicator;
use bagualu_model::param::{HasParams, Param};
use bagualu_optim::adam::{Adam, AdamConfig};

/// Adapter exposing only the expert parameters to an optimizer.
struct ExpertParams<'a>(&'a mut DistTransformer);

impl HasParams for ExpertParams<'_> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_expert_params(f);
    }
}

/// Sharded-state Adam over a [`DistTransformer`].
pub struct ZeroAdam {
    pub cfg: AdamConfig,
    t: i32,
    /// FP32 master copy of this rank's dense shard.
    master: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    expert_adam: Adam,
}

fn bound(len: usize, n: usize, i: usize) -> usize {
    len * i / n
}

impl ZeroAdam {
    pub fn new(cfg: AdamConfig) -> ZeroAdam {
        ZeroAdam {
            cfg,
            t: 0,
            master: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
            expert_adam: Adam::new(cfg),
        }
    }

    /// Bytes of dense optimizer state this rank holds (after the first
    /// step): the sharding claim E7 quantifies.
    pub fn dense_state_bytes(&self) -> usize {
        (self.master.len() + self.m.len() + self.v.len()) * 4
    }

    /// Change the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
        self.expert_adam.set_lr(lr);
    }

    /// One optimizer step. Replaces `sync_grads` + replicated step: call it
    /// directly after `backward` with *unsynchronized* gradients.
    /// Collective — every rank participates.
    pub fn step<C: Communicator>(&mut self, model: &mut DistTransformer, comm: &C) {
        let r = comm.size();
        let rank = comm.rank();

        // ---- Dense path: reduce-scatter the gradient, update own shard.
        let mut flat = Vec::new();
        model.visit_dense_params(&mut |p| flat.extend_from_slice(p.grad.as_slice()));
        let total_len = flat.len();
        let mut shard_grad = reduce_scatter(comm, flat, ReduceOp::Sum);
        let inv = 1.0 / r as f32;
        for g in &mut shard_grad {
            *g *= inv;
        }

        let lo = bound(total_len, r, rank);
        let hi = bound(total_len, r, rank + 1);
        if self.master.is_empty() && hi > lo {
            // Lazily capture the master shard from the current values.
            let mut values = Vec::with_capacity(total_len);
            model.visit_dense_params(&mut |p| values.extend_from_slice(p.value.as_slice()));
            self.master = values[lo..hi].to_vec();
            self.m = vec![0.0; hi - lo];
            self.v = vec![0.0; hi - lo];
        }
        assert_eq!(
            shard_grad.len(),
            self.master.len(),
            "shard size changed between steps"
        );

        self.t += 1;
        let c = self.cfg;
        let bc1 = 1.0 - c.beta1.powi(self.t);
        let bc2 = 1.0 - c.beta2.powi(self.t);
        for (j, &g) in shard_grad.iter().enumerate().take(self.master.len()) {
            self.m[j] = c.beta1 * self.m[j] + (1.0 - c.beta1) * g;
            self.v[j] = c.beta2 * self.v[j] + (1.0 - c.beta2) * g * g;
            let mhat = self.m[j] / bc1;
            let vhat = self.v[j] / bc2;
            self.master[j] -=
                c.lr * (mhat / (vhat.sqrt() + c.eps) + c.weight_decay * self.master[j]);
        }

        // ---- Publish: all-gather the updated shards and write back.
        let gathered = allgather(comm, self.master.clone());
        let full: Vec<f32> = gathered.into_iter().flatten().collect();
        assert_eq!(full.len(), total_len);
        let mut off = 0usize;
        model.visit_dense_params(&mut |p| {
            let n = p.value.len();
            p.value.as_mut_slice().copy_from_slice(&full[off..off + n]);
            off += n;
        });

        // ---- Expert path: local rescale + private Adam.
        model.visit_expert_params(&mut |p| p.grad.scale(inv));
        self.expert_adam.step(&mut ExpertParams(model));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moe_dist::A2aKind;
    use crate::sync::sync_grads;
    use bagualu_comm::harness::run_ranks_map;
    use bagualu_model::config::ModelConfig;
    use bagualu_model::loss::cross_entropy;
    use bagualu_model::moe::GateKind;
    use bagualu_tensor::rng::Rng;

    fn cfg() -> ModelConfig {
        ModelConfig {
            vocab: 19,
            d_model: 8,
            n_heads: 2,
            n_layers: 2,
            d_ff: 16,
            max_seq: 4,
            n_experts: 4,
            moe_every: 2,
            gate: GateKind::Top1,
            capacity_factor: 64.0,
            aux_weight: 0.0,
            router_groups: 0,
            rope: false,
            tie_embeddings: false,
        }
    }

    fn batch(rank: usize, step: usize, n: usize, vocab: usize) -> (Vec<usize>, Vec<usize>) {
        let mut rng = Rng::for_rank(step as u64, rank);
        let tokens: Vec<usize> = (0..n).map(|_| rng.below(vocab)).collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 3) % vocab).collect();
        (tokens, targets)
    }

    /// Train with the given strategy; return flattened dense params +
    /// each rank's expert params.
    fn train(nranks: usize, steps: usize, zero: bool) -> Vec<(Vec<f32>, Vec<f32>)> {
        let model_cfg = cfg();
        run_ranks_map(nranks, move |c| {
            let mut model =
                DistTransformer::new(model_cfg, 31, c.rank(), nranks, A2aKind::Pairwise);
            let acfg = AdamConfig {
                lr: 1e-2,
                ..Default::default()
            };
            let mut zopt = ZeroAdam::new(acfg);
            let mut full = Adam::new(acfg);
            for step in 0..steps {
                let (tokens, targets) = batch(c.rank(), step, 8, model_cfg.vocab);
                let logits = model.forward(&tokens, 2, 4, &c);
                let (_, dlogits) = cross_entropy(&logits, &targets);
                model.backward(&dlogits, &c);
                if zero {
                    zopt.step(&mut model, &c);
                } else {
                    sync_grads(&mut model, &c);
                    full.step(&mut model);
                }
                model.zero_grad();
            }
            let mut dense = Vec::new();
            model.visit_dense_params(&mut |p| dense.extend_from_slice(p.value.as_slice()));
            let mut experts = Vec::new();
            model.visit_expert_params(&mut |p| experts.extend_from_slice(p.value.as_slice()));
            (dense, experts)
        })
    }

    #[test]
    fn zero_matches_replicated_adam() {
        let nranks = 4;
        let replicated = train(nranks, 5, false);
        let zero = train(nranks, 5, true);
        for rank in 0..nranks {
            let (rd, re) = &replicated[rank];
            let (zd, ze) = &zero[rank];
            let dense_max = rd
                .iter()
                .zip(zd)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                dense_max < 1e-4,
                "rank {rank}: dense diverged by {dense_max}"
            );
            let exp_max = re
                .iter()
                .zip(ze)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(exp_max < 1e-4, "rank {rank}: experts diverged by {exp_max}");
        }
    }

    #[test]
    fn zero_replicas_stay_consistent() {
        let nranks = 3;
        let outs = train(nranks, 4, true);
        for rank in 1..nranks {
            let max = outs[0]
                .0
                .iter()
                .zip(&outs[rank].0)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max < 1e-5, "rank {rank} dense replica diverged by {max}");
        }
    }

    #[test]
    fn dense_state_is_sharded() {
        let nranks = 4;
        let model_cfg = cfg();
        let states = run_ranks_map(nranks, move |c| {
            let mut model =
                DistTransformer::new(model_cfg, 31, c.rank(), nranks, A2aKind::Pairwise);
            let mut opt = ZeroAdam::new(AdamConfig::default());
            let (tokens, targets) = batch(c.rank(), 0, 8, model_cfg.vocab);
            let logits = model.forward(&tokens, 2, 4, &c);
            let (_, dlogits) = cross_entropy(&logits, &targets);
            model.backward(&dlogits, &c);
            opt.step(&mut model, &c);
            let mut dense_len = 0usize;
            model.visit_dense_params(&mut |p| dense_len += p.value.len());
            (opt.dense_state_bytes(), dense_len)
        });
        let total_state: usize = states.iter().map(|(b, _)| b).sum();
        let dense_len = states[0].1;
        // Across all ranks the state covers each dense scalar exactly once
        // (master + m + v = 12 bytes each).
        assert_eq!(total_state, dense_len * 12);
        // And each rank holds roughly 1/R of it.
        for (bytes, _) in &states {
            let share = *bytes as f64 / (dense_len * 12) as f64;
            assert!((share - 0.25).abs() < 0.05, "share {share}");
        }
    }
}
