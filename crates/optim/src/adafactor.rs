//! Adafactor: sublinear-memory adaptive optimization.
//!
//! Adam's 8 B/parameter of moment state (plus the 4 B master) is the
//! largest single line in the brain-scale memory budget (experiment E7).
//! Adafactor (Shazeer & Stern, 2018) replaces the full second-moment
//! matrix of an `n×m` parameter with its **row and column means** — `n+m`
//! state instead of `n·m` — reconstructing `v̂_ij ≈ R_i·C_j / mean(R)`.
//! This implementation keeps the memory-relevant core of the method:
//!
//! * factored second moments for 2-D parameters, full vector for 1-D,
//! * time-dependent decay `β₂(t) = 1 − t^{−0.8}`,
//! * update-RMS clipping at `d = 1.0`,
//! * no first moment (the default — and the memory point).

use bagualu_model::param::HasParams;

/// Adafactor state for one parameter.
enum FactorState {
    /// 2-D: EMA of squared-gradient row means and column means.
    Factored { rows: Vec<f32>, cols: Vec<f32> },
    /// 1-D (or degenerate): full EMA of squared gradients.
    Full(Vec<f32>),
}

/// The optimizer.
pub struct Adafactor {
    pub lr: f32,
    /// Update clipping threshold (RMS of the scaled update).
    pub clip_threshold: f32,
    pub eps: f32,
    states: Vec<FactorState>,
    t: i32,
}

impl Adafactor {
    pub fn new(lr: f32) -> Adafactor {
        Adafactor {
            lr,
            clip_threshold: 1.0,
            eps: 1e-30,
            states: Vec::new(),
            t: 0,
        }
    }

    /// Bytes of optimizer state currently held.
    pub fn state_bytes(&self) -> usize {
        self.states
            .iter()
            .map(|s| match s {
                FactorState::Factored { rows, cols } => 4 * (rows.len() + cols.len()),
                FactorState::Full(v) => 4 * v.len(),
            })
            .sum()
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// One update from accumulated gradients.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        self.t += 1;
        let beta2 = 1.0 - (self.t as f32).powf(-0.8);
        let states = &mut self.states;
        let (lr, clip, eps) = (self.lr, self.clip_threshold, self.eps);
        let mut i = 0usize;
        model.visit_params(&mut |p| {
            let shape = p.value.shape().to_vec();
            if states.len() == i {
                states.push(if shape.len() == 2 && shape[0] > 1 && shape[1] > 1 {
                    FactorState::Factored {
                        rows: vec![0.0; shape[0]],
                        cols: vec![0.0; shape[1]],
                    }
                } else {
                    FactorState::Full(vec![0.0; p.value.len()])
                });
            }
            let grad = p.grad.as_slice().to_vec();
            let n_el = grad.len() as f32;
            // Build the per-element adaptive denominator.
            let mut update: Vec<f32> = match &mut states[i] {
                FactorState::Factored { rows, cols } => {
                    let (n, m) = (shape[0], shape[1]);
                    // Update row/col EMAs of g² (+eps for stability).
                    for r in 0..n {
                        let mean: f32 = grad[r * m..(r + 1) * m]
                            .iter()
                            .map(|g| g * g + eps)
                            .sum::<f32>()
                            / m as f32;
                        rows[r] = beta2 * rows[r] + (1.0 - beta2) * mean;
                    }
                    for c in 0..m {
                        let mut s = 0.0f32;
                        for r in 0..n {
                            let g = grad[r * m + c];
                            s += g * g + eps;
                        }
                        cols[c] = beta2 * cols[c] + (1.0 - beta2) * s / n as f32;
                    }
                    let row_mean: f32 = rows.iter().sum::<f32>() / n as f32;
                    let mut u = Vec::with_capacity(grad.len());
                    for r in 0..n {
                        for c in 0..m {
                            let v = rows[r] * cols[c] / row_mean.max(eps);
                            u.push(grad[r * m + c] / v.sqrt().max(1e-12));
                        }
                    }
                    u
                }
                FactorState::Full(v) => {
                    for (vv, g) in v.iter_mut().zip(&grad) {
                        *vv = beta2 * *vv + (1.0 - beta2) * (g * g + eps);
                    }
                    grad.iter()
                        .zip(v.iter())
                        .map(|(g, vv)| g / vv.sqrt().max(1e-12))
                        .collect()
                }
            };
            // RMS clipping of the scaled update.
            let rms = (update.iter().map(|u| u * u).sum::<f32>() / n_el).sqrt();
            if rms > clip {
                let s = clip / rms;
                update.iter_mut().for_each(|u| *u *= s);
            }
            for (th, u) in p.value.as_mut_slice().iter_mut().zip(&update) {
                *th -= lr * u;
            }
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::param::Param;
    use bagualu_tensor::Tensor;

    struct One {
        p: Param,
    }

    impl HasParams for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn descends_a_quadratic_matrix() {
        let mut m = One {
            p: Param::new(
                "w",
                Tensor::from_vec(vec![3.0, -2.0, 1.5, -0.5, 2.5, -1.0], &[2, 3]),
            ),
        };
        let mut opt = Adafactor::new(0.05);
        for _ in 0..300 {
            m.p.grad = m.p.value.clone(); // L = ½‖W‖²
            opt.step(&mut m);
        }
        assert!(m.p.value.norm() < 0.2, "norm {}", m.p.value.norm());
    }

    #[test]
    fn factored_state_is_sublinear() {
        let mut m = One {
            p: Param::new("w", Tensor::zeros(&[64, 128])),
        };
        let mut opt = Adafactor::new(0.01);
        m.p.grad = Tensor::ones(&[64, 128]);
        opt.step(&mut m);
        // 64 + 128 floats, not 64·128.
        assert_eq!(opt.state_bytes(), 4 * (64 + 128));
        // Adam would hold 2 × 64 × 128 floats.
        assert!(opt.state_bytes() < 2 * 4 * 64 * 128 / 40);
    }

    #[test]
    fn vectors_use_full_state() {
        let mut m = One {
            p: Param::new("b", Tensor::zeros(&[100])),
        };
        let mut opt = Adafactor::new(0.01);
        m.p.grad = Tensor::ones(&[100]);
        opt.step(&mut m);
        assert_eq!(opt.state_bytes(), 400);
    }

    #[test]
    fn update_rms_is_clipped() {
        // A huge first gradient: after normalization the update RMS is ~1
        // (clipped), so the parameter moves by about lr per coordinate.
        let mut m = One {
            p: Param::new("w", Tensor::zeros(&[4, 4])),
        };
        let mut opt = Adafactor::new(0.1);
        m.p.grad = Tensor::full(&[4, 4], 1.0e6);
        opt.step(&mut m);
        for &v in m.p.value.as_slice() {
            assert!(v.abs() <= 0.1 + 1e-5, "moved {v}");
            assert!(v.abs() > 0.05, "barely moved {v}");
        }
        assert!(!m.p.value.has_non_finite());
    }

    #[test]
    fn trains_a_small_model_comparably_to_adam() {
        use bagualu_model::config::ModelConfig;
        use bagualu_model::transformer::Transformer;
        use bagualu_tensor::rng::Rng;
        let cfg = ModelConfig::tiny();
        let mut rng = Rng::seed_from(11);
        let mut model = Transformer::new(cfg, &mut rng);
        let mut opt = Adafactor::new(0.05);
        let tokens: Vec<usize> = (0..16).map(|i| (i * 7) % cfg.vocab).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i * 7 + 3) % cfg.vocab).collect();
        let first = model.train_batch(&tokens, &targets, 2, 8);
        for _ in 0..60 {
            opt.step(&mut model);
            model.zero_grad();
            model.train_batch(&tokens, &targets, 2, 8);
        }
        let last = model.train_batch(&tokens, &targets, 2, 8);
        assert!(
            last.ce_loss < first.ce_loss * 0.3,
            "adafactor failed to learn: {} -> {}",
            first.ce_loss,
            last.ce_loss
        );
    }
}
