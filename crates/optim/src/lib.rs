//! Optimizers and mixed-precision machinery.
//!
//! BaGuaLu's headline throughput comes from half-precision arithmetic, which
//! only trains stably with the standard mixed-precision recipe: **FP32
//! master weights**, a **dynamic loss scaler** that keeps FP16 gradients out
//! of the underflow region and backs off on overflow, and an FP32 optimizer
//! (Adam) whose state never leaves full precision. This crate implements
//! that recipe over any [`bagualu_model::param::HasParams`] model:
//!
//! * [`Sgd`], [`Adam`] — plain FP32 optimizers,
//! * [`clip_grad_norm`] — global gradient-norm clipping,
//! * [`LossScaler`] — dynamic loss scaling (grow on a streak of good steps,
//!   halve on overflow),
//! * [`MixedPrecision`] — the master-weight wrapper: working parameters are
//!   round-tripped through the configured half format after every update,
//!   gradients are unscaled and checked for overflow before the FP32 step.

pub mod adafactor;
pub mod adam;
pub mod clip;
pub mod mixed;
pub mod scaler;
pub mod schedule;
pub mod sgd;

pub use adafactor::Adafactor;
pub use adam::{Adam, AdamConfig};
pub use clip::clip_grad_norm;
pub use mixed::{MixedPrecision, StepOutcome};
pub use scaler::LossScaler;
pub use schedule::LrSchedule;
pub use sgd::Sgd;
