//! Adam / AdamW with bias correction.
//!
//! The element-wise update dispatches through the pluggable
//! [`RowOpsBackend`](bagualu_tensor::ops::RowOpsBackend) (reference or
//! vectorized tier, bit-identical to each other), which also records the
//! `compute.adam.{flops,ns}` trace counters. Mixed precision and ZeRO both
//! delegate to this optimizer, so the routing covers every training mode.

use bagualu_model::param::HasParams;
use bagualu_tensor::ops::{adam_update, AdamStep};
use bagualu_tensor::Tensor;

/// Adam hyperparameters. `weight_decay` is decoupled (AdamW-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> AdamConfig {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam with first/second-moment state and bias correction. Holds ~8 bytes
/// of FP32 state per parameter — exactly the footprint the memory budget in
/// `bagualu-hw` charges (plus the 4-byte master weight when wrapped by
/// mixed precision).
pub struct Adam {
    pub cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: i32,
}

impl Adam {
    pub fn new(cfg: AdamConfig) -> Adam {
        Adam {
            cfg,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Current step count.
    pub fn steps(&self) -> i32 {
        self.t
    }

    /// Change the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Apply one update from the accumulated gradients, on the calling
    /// thread's row-op backend.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        self.t += 1;
        let c = self.cfg;
        let step = AdamStep {
            lr: c.lr,
            beta1: c.beta1,
            beta2: c.beta2,
            eps: c.eps,
            weight_decay: c.weight_decay,
            bc1: 1.0 - c.beta1.powi(self.t),
            bc2: 1.0 - c.beta2.powi(self.t),
        };
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut i = 0usize;
        model.visit_params(&mut |p| {
            if ms.len() == i {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            assert_eq!(
                ms[i].shape(),
                p.value.shape(),
                "parameter {i} changed shape"
            );
            adam_update(
                p.value.as_mut_slice(),
                p.grad.as_slice(),
                ms[i].as_mut_slice(),
                vs[i].as_mut_slice(),
                &step,
            );
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::param::Param;

    struct One {
        p: Param,
    }

    impl HasParams for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn descends_a_quadratic() {
        let mut m = One {
            p: Param::new("x", Tensor::from_vec(vec![3.0, -2.0, 1.0], &[3])),
        };
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            ..Default::default()
        });
        for _ in 0..200 {
            m.p.grad = m.p.value.clone(); // L = ½‖x‖²
            opt.step(&mut m);
        }
        assert!(m.p.value.norm() < 0.05, "norm {}", m.p.value.norm());
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut m = One {
            p: Param::new("x", Tensor::from_vec(vec![5.0], &[1])),
        };
        let mut opt = Adam::new(AdamConfig {
            lr: 0.01,
            ..Default::default()
        });
        m.p.grad = Tensor::from_vec(vec![100.0], &[1]);
        opt.step(&mut m);
        assert!((m.p.value.as_slice()[0] - (5.0 - 0.01)).abs() < 1e-4);
    }

    #[test]
    fn adamw_decay_is_decoupled() {
        // With zero gradient, AdamW still decays weights; Adam-with-L2 would
        // not move (grad = 0 ⇒ m = v = 0 ⇒ update = decay only).
        let mut m = One {
            p: Param::new("x", Tensor::from_vec(vec![2.0], &[1])),
        };
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.1,
            ..Default::default()
        });
        opt.step(&mut m);
        let x = m.p.value.as_slice()[0];
        assert!((x - (2.0 - 0.1 * 0.1 * 2.0)).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn adapts_per_coordinate_scale() {
        // Two coordinates with gradients of very different magnitude should
        // move at comparable speed under Adam.
        let mut m = One {
            p: Param::new("x", Tensor::from_vec(vec![1.0, 1.0], &[2])),
        };
        let mut opt = Adam::new(AdamConfig {
            lr: 0.01,
            ..Default::default()
        });
        for _ in 0..10 {
            m.p.grad = Tensor::from_vec(
                vec![
                    1000.0 * m.p.value.as_slice()[0],
                    0.001 * m.p.value.as_slice()[1],
                ],
                &[2],
            );
            opt.step(&mut m);
        }
        let x = m.p.value.as_slice();
        let moved0 = 1.0 - x[0];
        let moved1 = 1.0 - x[1];
        assert!(moved0 > 0.0 && moved1 > 0.0);
        assert!((moved0 / moved1) < 2.0, "moves {moved0} vs {moved1}");
    }
}
