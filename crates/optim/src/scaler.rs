//! Dynamic loss scaling for FP16 training.
//!
//! FP16's smallest positive normal is 2⁻¹⁴ ≈ 6·10⁻⁵; activation gradients of
//! a deep network routinely fall below that and flush to zero. Multiplying
//! the loss (equivalently, the logits gradient) by a large scale pushes the
//! whole gradient distribution back into range; the optimizer divides it
//! out again before the update. The scale is adjusted dynamically: halve on
//! overflow (any non-finite gradient), grow ×2 after a streak of clean
//! steps.

/// Dynamic loss scaler state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossScaler {
    scale: f32,
    pub growth_factor: f32,
    pub backoff_factor: f32,
    /// Clean steps required before the scale grows.
    pub growth_interval: u32,
    good_steps: u32,
    pub min_scale: f32,
    pub max_scale: f32,
}

impl Default for LossScaler {
    fn default() -> LossScaler {
        LossScaler::new(65_536.0)
    }
}

impl LossScaler {
    pub fn new(initial_scale: f32) -> LossScaler {
        assert!(initial_scale > 0.0);
        LossScaler {
            scale: initial_scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 200,
            good_steps: 0,
            min_scale: 1.0,
            max_scale: 2.0f32.powi(24),
        }
    }

    /// A scaler fixed at 1 (for FP32 or BF16 runs that need no scaling).
    pub fn disabled() -> LossScaler {
        let mut s = LossScaler::new(1.0);
        s.min_scale = 1.0;
        s.max_scale = 1.0;
        s
    }

    /// The current multiplier to apply to the loss gradient.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Record the outcome of a step: `overflowed = true` when any gradient
    /// was non-finite after unscaling (that step must be skipped by the
    /// caller).
    pub fn update(&mut self, overflowed: bool) {
        if overflowed {
            self.scale = (self.scale * self.backoff_factor).max(self.min_scale);
            self.good_steps = 0;
        } else {
            self.good_steps += 1;
            if self.good_steps >= self.growth_interval {
                self.scale = (self.scale * self.growth_factor).min(self.max_scale);
                self.good_steps = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_halves_scale() {
        let mut s = LossScaler::new(1024.0);
        s.update(true);
        assert_eq!(s.scale(), 512.0);
        s.update(true);
        assert_eq!(s.scale(), 256.0);
    }

    #[test]
    fn growth_after_clean_streak() {
        let mut s = LossScaler::new(8.0);
        s.growth_interval = 3;
        s.update(false);
        s.update(false);
        assert_eq!(s.scale(), 8.0);
        s.update(false);
        assert_eq!(s.scale(), 16.0);
    }

    #[test]
    fn overflow_resets_streak() {
        let mut s = LossScaler::new(8.0);
        s.growth_interval = 2;
        s.update(false);
        s.update(true); // halves and resets
        assert_eq!(s.scale(), 4.0);
        s.update(false);
        assert_eq!(s.scale(), 4.0); // streak restarted
        s.update(false);
        assert_eq!(s.scale(), 8.0);
    }

    #[test]
    fn scale_is_bounded() {
        let mut s = LossScaler::new(2.0);
        s.min_scale = 1.0;
        for _ in 0..10 {
            s.update(true);
        }
        assert_eq!(s.scale(), 1.0);
        let mut s = LossScaler::new(2.0f32.powi(23));
        s.growth_interval = 1;
        for _ in 0..10 {
            s.update(false);
        }
        assert_eq!(s.scale(), 2.0f32.powi(24));
    }

    #[test]
    fn disabled_scaler_stays_at_one() {
        let mut s = LossScaler::disabled();
        s.growth_interval = 1;
        for _ in 0..5 {
            s.update(false);
        }
        assert_eq!(s.scale(), 1.0);
        s.update(true);
        assert_eq!(s.scale(), 1.0);
    }
}
