//! Stochastic gradient descent with optional momentum.

use bagualu_model::param::HasParams;
use bagualu_tensor::Tensor;

/// Plain SGD: `θ ← θ − lr·(g + wd·θ)`, with optional heavy-ball momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Apply one update from the accumulated gradients.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        let lr = self.lr;
        let mu = self.momentum;
        let wd = self.weight_decay;
        let vel = &mut self.velocity;
        let mut i = 0usize;
        model.visit_params(&mut |p| {
            if vel.len() == i {
                vel.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut vel[i];
            assert_eq!(v.shape(), p.value.shape(), "parameter {i} changed shape");
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            let vbuf = v.as_mut_slice();
            for ((th, &g), vv) in value.iter_mut().zip(grad).zip(vbuf.iter_mut()) {
                let g = g + wd * *th;
                if mu != 0.0 {
                    *vv = mu * *vv + g;
                    *th -= lr * *vv;
                } else {
                    *th -= lr * g;
                }
            }
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::param::Param;

    struct One {
        p: Param,
    }

    impl HasParams for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    fn quad() -> One {
        One {
            p: Param::new("x", Tensor::from_vec(vec![10.0, -4.0], &[2])),
        }
    }

    #[test]
    fn descends_a_quadratic() {
        // L = ½‖x‖² → g = x. SGD must shrink x geometrically.
        let mut m = quad();
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            m.p.grad = m.p.value.clone();
            opt.step(&mut m);
        }
        assert!(m.p.value.norm() < 0.1, "norm {}", m.p.value.norm());
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = quad();
        let mut heavy = quad();
        let mut o1 = Sgd::new(0.01);
        let mut o2 = Sgd::with_momentum(0.01, 0.9);
        for _ in 0..30 {
            plain.p.grad = plain.p.value.clone();
            o1.step(&mut plain);
            heavy.p.grad = heavy.p.value.clone();
            o2.step(&mut heavy);
        }
        assert!(heavy.p.value.norm() < plain.p.value.norm());
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_grad() {
        let mut m = quad();
        let mut opt = Sgd::new(0.1);
        opt.weight_decay = 0.5;
        let before = m.p.value.norm();
        opt.step(&mut m); // grad is zero
        assert!(m.p.value.norm() < before);
    }
}
