//! Global gradient-norm clipping.

use bagualu_model::param::HasParams;

/// Scale all gradients so the global L2 norm does not exceed `max_norm`.
/// Returns the pre-clip norm. Non-finite norms leave gradients untouched
/// (the loss scaler handles that case by skipping the step).
pub fn clip_grad_norm(model: &mut dyn HasParams, max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    model.visit_params(&mut |p| sq += p.grad.sq_norm() as f64);
    let norm = (sq.sqrt()) as f32;
    if norm.is_finite() && norm > max_norm {
        let scale = max_norm / norm;
        model.visit_params(&mut |p| p.grad.scale(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::param::Param;
    use bagualu_tensor::Tensor;

    struct Two {
        a: Param,
        b: Param,
    }

    impl HasParams for Two {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn with_grads(ga: Vec<f32>, gb: Vec<f32>) -> Two {
        let mut t = Two {
            a: Param::new("a", Tensor::zeros(&[ga.len()])),
            b: Param::new("b", Tensor::zeros(&[gb.len()])),
        };
        let (la, lb) = (ga.len(), gb.len());
        t.a.grad = Tensor::from_vec(ga, &[la]);
        t.b.grad = Tensor::from_vec(gb, &[lb]);
        t
    }

    #[test]
    fn clips_to_max_norm() {
        let mut t = with_grads(vec![3.0], vec![4.0]); // norm 5
        let pre = clip_grad_norm(&mut t, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = (t.a.grad.sq_norm() + t.b.grad.sq_norm()).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
        // Direction is preserved.
        assert!((t.a.grad.as_slice()[0] / t.b.grad.as_slice()[0] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn small_gradients_untouched() {
        let mut t = with_grads(vec![0.1], vec![0.2]);
        clip_grad_norm(&mut t, 10.0);
        assert_eq!(t.a.grad.as_slice(), &[0.1]);
        assert_eq!(t.b.grad.as_slice(), &[0.2]);
    }

    #[test]
    fn non_finite_norm_leaves_grads_alone() {
        let mut t = with_grads(vec![f32::INFINITY], vec![1.0]);
        let pre = clip_grad_norm(&mut t, 1.0);
        assert!(!pre.is_finite());
        assert_eq!(t.b.grad.as_slice(), &[1.0]);
    }
}
