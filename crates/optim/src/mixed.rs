//! Mixed-precision training: FP32 master weights + half working weights.
//!
//! Protocol per step (caller side):
//!
//! 1. scale the loss gradient by [`MixedPrecision::loss_scale`] before
//!    `backward`,
//! 2. call [`MixedPrecision::step`] — it unscales gradients, skips the
//!    update on overflow (shrinking the scale), otherwise runs the FP32
//!    Adam update on the master weights and writes half-rounded copies back
//!    into the model,
//! 3. `zero_grad` and continue.
//!
//! The model's working parameters therefore always carry the configured
//! half format's rounding, reproducing the numerics of storing weights in
//! FP16/BF16 on the accelerator while the optimizer state stays FP32.

use crate::adam::{Adam, AdamConfig};
use crate::scaler::LossScaler;
use bagualu_model::param::HasParams;
use bagualu_tensor::{DType, Tensor};

/// What happened on a mixed-precision step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Gradients were finite; the update was applied.
    Applied,
    /// Non-finite gradients detected; the update was skipped and the loss
    /// scale reduced.
    SkippedOverflow,
}

/// FP32-master-weight optimizer wrapper.
pub struct MixedPrecision {
    pub dtype: DType,
    pub scaler: LossScaler,
    adam: Adam,
    masters: Vec<Tensor>,
    /// Steps skipped due to overflow (telemetry for experiments).
    pub skipped_steps: u64,
    pub applied_steps: u64,
}

impl MixedPrecision {
    /// Wrap `cfg` for training in `dtype`. FP32 gets a disabled scaler;
    /// BF16 keeps scaling optional (its exponent range matches FP32) but
    /// defaults to disabled; FP16 gets the standard dynamic scaler.
    pub fn new(cfg: AdamConfig, dtype: DType) -> MixedPrecision {
        let scaler = match dtype {
            DType::F16 => LossScaler::default(),
            DType::F32 | DType::BF16 => LossScaler::disabled(),
        };
        MixedPrecision {
            dtype,
            scaler,
            adam: Adam::new(cfg),
            masters: Vec::new(),
            skipped_steps: 0,
            applied_steps: 0,
        }
    }

    /// Override the scaler (e.g. to demonstrate FP16 *without* scaling in
    /// the precision ablation).
    pub fn with_scaler(mut self, scaler: LossScaler) -> MixedPrecision {
        self.scaler = scaler;
        self
    }

    /// Multiplier the caller applies to the loss gradient before backward.
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// Change the inner optimizer's learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.adam.set_lr(lr);
    }

    /// Round the model's working weights through the half format. Call once
    /// after construction so the very first forward already sees the half
    /// numerics; `step` maintains the invariant afterwards.
    pub fn quantize_model(&mut self, model: &mut dyn HasParams) {
        let dt = self.dtype;
        model.visit_params(&mut |p| p.value.quantize(dt));
    }

    /// One optimizer step. Returns whether the update was applied.
    pub fn step(&mut self, model: &mut dyn HasParams) -> StepOutcome {
        // Capture master weights on first use (from the *unquantized*
        // values if the caller hasn't quantized yet — idempotent either way).
        if self.masters.is_empty() {
            model.visit_params(&mut |p| self.masters.push(p.value.clone()));
        }

        // Unscale and overflow-check the gradients.
        let inv = 1.0 / self.scaler.scale();
        let mut overflow = false;
        model.visit_params(&mut |p| {
            p.grad.scale(inv);
            if p.grad.has_non_finite() {
                overflow = true;
            }
        });

        if overflow {
            self.scaler.update(true);
            self.skipped_steps += 1;
            return StepOutcome::SkippedOverflow;
        }

        // Swap master weights in, run the FP32 update, swap the refreshed
        // masters out and publish half-rounded working copies.
        let masters = &mut self.masters;
        let mut i = 0usize;
        model.visit_params(&mut |p| {
            std::mem::swap(&mut p.value, &mut masters[i]);
            i += 1;
        });
        self.adam.step(model);
        let dt = self.dtype;
        let mut i = 0usize;
        model.visit_params(&mut |p| {
            masters[i] = p.value.clone();
            p.value.quantize(dt);
            i += 1;
        });

        self.scaler.update(false);
        self.applied_steps += 1;
        StepOutcome::Applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::param::Param;

    struct One {
        p: Param,
    }

    impl HasParams for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn fp32_step_matches_plain_adam() {
        let cfg = AdamConfig {
            lr: 0.1,
            ..Default::default()
        };
        let mut a = One {
            p: Param::new("x", Tensor::from_vec(vec![1.0, -2.0], &[2])),
        };
        let mut b = One {
            p: Param::new("x", Tensor::from_vec(vec![1.0, -2.0], &[2])),
        };
        let mut plain = Adam::new(cfg);
        let mut mixed = MixedPrecision::new(cfg, DType::F32);
        for _ in 0..5 {
            a.p.grad = a.p.value.clone();
            plain.step(&mut a);
            b.p.grad = b.p.value.clone();
            assert_eq!(mixed.step(&mut b), StepOutcome::Applied);
        }
        assert!(a.p.value.approx_eq(&b.p.value, 1e-7));
    }

    #[test]
    fn overflow_skips_and_shrinks_scale() {
        let cfg = AdamConfig::default();
        let mut m = One {
            p: Param::new("x", Tensor::from_vec(vec![1.0], &[1])),
        };
        let mut opt = MixedPrecision::new(cfg, DType::F16);
        let s0 = opt.loss_scale();
        m.p.grad = Tensor::from_vec(vec![f32::INFINITY], &[1]);
        assert_eq!(opt.step(&mut m), StepOutcome::SkippedOverflow);
        assert_eq!(
            m.p.value.as_slice(),
            &[1.0],
            "value must not move on overflow"
        );
        assert!(opt.loss_scale() < s0);
        assert_eq!(opt.skipped_steps, 1);
    }

    #[test]
    fn working_weights_carry_half_rounding() {
        let cfg = AdamConfig {
            lr: 1e-4,
            ..Default::default()
        };
        let mut m = One {
            p: Param::new("x", Tensor::from_vec(vec![1.0 + 2.0f32.powi(-12)], &[1])),
        };
        let mut opt = MixedPrecision::new(cfg, DType::F16);
        opt.quantize_model(&mut m);
        // The working copy is rounded to an f16-representable value…
        assert_eq!(m.p.value.as_slice()[0], 1.0);
        m.p.grad = Tensor::from_vec(vec![0.0], &[1]);
        opt.step(&mut m);
        // …while the master kept the full value: with zero grad the master
        // is unchanged, and the published value is its rounding.
        assert_eq!(m.p.value.as_slice()[0], 1.0);
    }

    #[test]
    fn master_weights_accumulate_below_half_resolution() {
        // Updates of ~1e-4 are below BF16 resolution near 1.0 (2⁻⁸); without
        // master weights they would be lost entirely. With masters they
        // accumulate and eventually move the working weight.
        let cfg = AdamConfig {
            lr: 1e-4,
            ..Default::default()
        };
        let mut m = One {
            p: Param::new("x", Tensor::from_vec(vec![1.0], &[1])),
        };
        let mut opt = MixedPrecision::new(cfg, DType::BF16);
        opt.quantize_model(&mut m);
        for _ in 0..100 {
            m.p.grad = Tensor::from_vec(vec![1.0], &[1]); // constant push down
            opt.step(&mut m);
            m.p.zero_grad();
        }
        // 100 steps × ~1e-4 ≈ 0.01 of motion — visible even after rounding.
        assert!(
            m.p.value.as_slice()[0] < 0.9975,
            "x = {}",
            m.p.value.as_slice()[0]
        );
    }

    #[test]
    fn unscaling_restores_gradient_magnitude() {
        let cfg = AdamConfig {
            lr: 0.1,
            ..Default::default()
        };
        // Same problem, one run scaled ×1024, one unscaled: identical result.
        let mut a = One {
            p: Param::new("x", Tensor::from_vec(vec![4.0], &[1])),
        };
        let mut b = One {
            p: Param::new("x", Tensor::from_vec(vec![4.0], &[1])),
        };
        let mut oa = MixedPrecision::new(cfg, DType::F32);
        let mut ob = MixedPrecision::new(cfg, DType::F32).with_scaler(LossScaler::new(1024.0));
        for _ in 0..3 {
            a.p.grad = a.p.value.clone();
            oa.step(&mut a);
            let mut g = b.p.value.clone();
            g.scale(ob.loss_scale());
            b.p.grad = g;
            ob.step(&mut b);
        }
        assert!(a.p.value.approx_eq(&b.p.value, 1e-6));
    }
}
