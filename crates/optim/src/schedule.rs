//! Learning-rate schedules.
//!
//! Brain-scale pretraining is schedule-sensitive: a warmup ramp keeps the
//! gate from collapsing onto a few experts while the router is random, and
//! a decay tail stabilizes the end of training. All schedules are pure
//! functions of the step index, so every rank computes the identical rate
//! with no communication.

/// A learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed rate.
    Constant(f32),
    /// Linear ramp from 0 to `peak` over `warmup`, then flat.
    Warmup { peak: f32, warmup: usize },
    /// Linear ramp, then cosine decay to `floor` at `total`.
    WarmupCosine {
        peak: f32,
        warmup: usize,
        total: usize,
        floor: f32,
    },
    /// Linear ramp, then linear decay to `floor` at `total`.
    WarmupLinear {
        peak: f32,
        warmup: usize,
        total: usize,
        floor: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::Warmup { peak, warmup } => warmup_ramp(step, peak, warmup),
            LrSchedule::WarmupCosine {
                peak,
                warmup,
                total,
                floor,
            } => {
                if step < warmup {
                    warmup_ramp(step, peak, warmup)
                } else {
                    let t = progress(step, warmup, total);
                    floor + 0.5 * (peak - floor) * (1.0 + (std::f32::consts::PI * t).cos())
                }
            }
            LrSchedule::WarmupLinear {
                peak,
                warmup,
                total,
                floor,
            } => {
                if step < warmup {
                    warmup_ramp(step, peak, warmup)
                } else {
                    let t = progress(step, warmup, total);
                    peak + (floor - peak) * t
                }
            }
        }
    }
}

fn warmup_ramp(step: usize, peak: f32, warmup: usize) -> f32 {
    if warmup == 0 {
        peak
    } else {
        peak * ((step + 1) as f32 / warmup as f32).min(1.0)
    }
}

/// Fraction of the decay phase completed, clamped to [0, 1].
fn progress(step: usize, warmup: usize, total: usize) -> f32 {
    if total <= warmup {
        return 1.0;
    }
    ((step - warmup) as f32 / (total - warmup) as f32).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1_000_000), 0.1);
    }

    #[test]
    fn warmup_ramps_linearly_to_peak() {
        let s = LrSchedule::Warmup {
            peak: 1.0,
            warmup: 10,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(4) - 0.5).abs() < 1e-6);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(100), 1.0);
    }

    #[test]
    fn cosine_decays_to_floor() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            warmup: 10,
            total: 110,
            floor: 0.1,
        };
        assert_eq!(s.at(9), 1.0);
        // Midpoint of decay: halfway between peak and floor.
        assert!((s.at(60) - 0.55).abs() < 0.01);
        assert!((s.at(110) - 0.1).abs() < 1e-6);
        assert!((s.at(10_000) - 0.1).abs() < 1e-6); // clamped
    }

    #[test]
    fn linear_decays_to_floor() {
        let s = LrSchedule::WarmupLinear {
            peak: 1.0,
            warmup: 0,
            total: 100,
            floor: 0.0,
        };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(50) - 0.5).abs() < 1e-6);
        assert!(s.at(100).abs() < 1e-6);
    }

    #[test]
    fn schedule_is_monotone_through_phases() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            warmup: 20,
            total: 200,
            floor: 0.0,
        };
        for step in 0..19 {
            assert!(
                s.at(step) <= s.at(step + 1) + 1e-7,
                "warmup must not decrease"
            );
        }
        for step in 20..199 {
            assert!(
                s.at(step) + 1e-7 >= s.at(step + 1),
                "decay must not increase"
            );
        }
    }

    #[test]
    fn zero_warmup_is_safe() {
        let s = LrSchedule::Warmup {
            peak: 0.5,
            warmup: 0,
        };
        assert_eq!(s.at(0), 0.5);
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            warmup: 0,
            total: 0,
            floor: 0.2,
        };
        assert_eq!(s.at(0), 0.2); // degenerate: everything is the floor
    }
}
