//! Regenerate the (reconstructed) evaluation tables and figures.
//!
//! ```text
//! cargo run -p bagualu-bench --release --bin reproduce -- all
//! cargo run -p bagualu-bench --release --bin reproduce -- e2 e3
//! ```

use bagualu_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: reproduce <all | e1 e2 ... e29>");
        eprintln!("experiments:");
        for id in experiments::ALL {
            eprintln!("  {id}");
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        if !experiments::run(id) {
            eprintln!("unknown experiment: {id}");
            std::process::exit(1);
        }
    }
}
