//! E15 — topology-aware expert placement ablation.
//!
//! With round-robin placement a token's expert is in its own supernode with
//! probability only `s/n ≈ 0.27%`. Locality-aware placement (replicating
//! hot experts per supernode, or biasing the gate toward supernode-local
//! experts) raises that fraction, moving all-to-all traffic from the
//! tapered inter-supernode links onto full-bisection local links.

use crate::table::Table;
use bagualu::hw::MachineConfig;
use bagualu::model::config::ModelConfig;
use bagualu::net::cost::CollectiveCost;

pub fn run() {
    println!("== E15: expert-placement locality, 96,000 nodes ==\n");
    let machine = MachineConfig::new_generation_sunway();
    let cc = CollectiveCost::new(machine);
    let m = ModelConfig::bagualu_14_5t();
    // Per-rank dispatch volume for one MoE layer: B·k token vectors, half
    // precision.
    let tokens_per_node = 2048.0;
    let volume = (tokens_per_node * m.gate.k() as f64 * m.d_model as f64 * 2.0) as usize;
    let baseline_frac = machine.supernode_size as f64 / machine.nodes as f64;

    let mut t = Table::new(&[
        "local fraction",
        "placement",
        "one a2a",
        "per step (48 a2a)",
        "speedup",
    ]);
    let base_time = cc.alltoall_with_locality(machine.nodes, volume, baseline_frac);
    for (frac, label) in [
        (baseline_frac, "round-robin (baseline)"),
        (0.25, "locality-biased gate"),
        (0.5, "hot experts replicated"),
        (0.75, "aggressive co-location"),
    ] {
        let one = cc.alltoall_with_locality(machine.nodes, volume, frac);
        t.row(&[
            format!("{:.2}%", frac * 100.0),
            label.into(),
            format!("{:.2} ms", one * 1e3),
            format!("{:.2} s", one * 4.0 * m.n_moe_blocks() as f64),
            format!("{:.2}x", base_time / one),
        ]);
    }
    t.print();
    println!(
        "\nShape check: every point of locality removes traffic from the 4:1-\n\
         tapered uplinks. The gains here bound what placement optimizations can\n\
         buy *after* the hierarchical algorithm has already removed the latency\n\
         bottleneck — worthwhile, but second-order compared to E3's gap.\n"
    );
}
