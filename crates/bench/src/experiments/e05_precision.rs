//! E5 — mixed-precision ablation.
//!
//! The same model/data/steps in four precision regimes: FP32, BF16 with
//! master weights, FP16 with dynamic loss scaling, and FP16 *without*
//! scaling (the failure mode scaling exists to prevent). Reported: final
//! loss, loss drop, and steps skipped by the scaler.

use crate::table::Table;
use bagualu::data::TokenDistribution;
use bagualu::model::config::ModelConfig;
use bagualu::tensor::DType;
use bagualu::trainer::{TrainConfig, Trainer};

fn run_one(dtype: DType, disable_scaling: bool) -> (f32, f32, u64) {
    let cfg = TrainConfig {
        model: ModelConfig::tiny(),
        nranks: 2,
        batch_per_rank: 4,
        seq: 8,
        steps: 120,
        lr: 1e-2,
        dtype,
        seed: 7,
        data: TokenDistribution::Uniform,
        disable_loss_scaling: disable_scaling,
        ..Default::default()
    };
    let report = Trainer::new(cfg).run();
    (
        report.loss_curve[0],
        report.final_loss(),
        report.skipped_steps,
    )
}

pub fn run() {
    println!("== E5: precision ablation (tiny MoE LM, 120 steps, 2 ranks) ==\n");
    let mut t = Table::new(&[
        "regime",
        "first loss",
        "final loss",
        "improvement",
        "skipped steps",
    ]);
    for (label, dtype, disable) in [
        ("fp32", DType::F32, false),
        ("bf16 + master weights", DType::BF16, false),
        ("fp16 + loss scaling", DType::F16, false),
        ("fp16, no scaling", DType::F16, true),
    ] {
        let (first, last, skipped) = run_one(dtype, disable);
        t.row(&[
            label.into(),
            format!("{first:.4}"),
            format!("{last:.4}"),
            format!("{:.1}%", 100.0 * (first - last) / first),
            format!("{skipped}"),
        ]);
    }
    t.print();
    println!(
        "\nShape check: fp32, bf16, and scaled fp16 all converge comparably; at this\n\
         small scale unscaled fp16 usually survives too (gradients are large), but\n\
         the half-precision weight rounding is exercised end to end. The underflow\n\
         failure mode of unscaled fp16 is pinned down by the unit tests on the\n\
         scaler and on deep-model gradient magnitudes.\n"
    );
}
