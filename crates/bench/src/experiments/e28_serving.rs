//! E28 — serving: continuous-batching latency/throughput and the 96k-node
//! per-token decode projection.
//!
//! Four sections:
//!
//! 1. **Bit-identity gates** (the CI teeth): continuous batching over a
//!    staggered arrival schedule must reproduce `generate_cached` token
//!    for token, and the 4-rank expert-parallel server must match the
//!    single-rank oracle.
//! 2. **Offered-load sweep**: p50/p99 end-to-end latency and delivered
//!    tokens/s vs offered QPS on a fixed world — the classic
//!    serving-system curve (latency grows toward saturation while
//!    throughput plateaus at the batch-occupancy ceiling).
//! 3. **Saturation vs rank count**: full-blast throughput on 1/2/4 ranks.
//!    Per-rank batches ride the same collective decode steps, so adding
//!    ranks adds concurrent batch slots (and experts stay sharded).
//! 4. **α–β projection to 96,000 nodes**: per-token decode all-to-all
//!    time for the 14.5T preset under pairwise vs hierarchical exchange
//!    and rising intra-supernode locality, from `net::cost` — the honest
//!    split: sections 2–3 are *measured* on the functional runtime,
//!    section 4 is *modeled* for hardware this reproduction cannot run.
//!
//! Artifacts: `target/e28/serving-table.txt` and `BENCH_serving.json` at
//! the repo root (schema `bagualu-serving/v1`).

use crate::table::Table;
use bagualu::hw::MachineConfig;
use bagualu::model::config::ModelConfig;
use bagualu::model::transformer::Transformer;
use bagualu::net::cost::CollectiveCost;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::parallel::DistTransformer;
use bagualu::serve::{run as serve_run, EngineConfig, Response, ServerOptions};
use bagualu::tensor::rng::Rng;
use bagualu::trace::names;
use std::time::{Duration, Instant};

const TABLE_OUT: &str = "target/e28/serving-table.txt";
const JSON_OUT: &str = "BENCH_serving.json";

const PROMPT_LEN: usize = 4;
const MAX_NEW: usize = 6;
const SEED: u64 = 2800;

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        max_batch: 8,
        kv_blocks: 64,
        block_tokens: 4,
    }
}

fn prompts(n: usize) -> Vec<Vec<usize>> {
    let cfg = ModelConfig::tiny();
    let mut rng = Rng::seed_from(SEED ^ 0xbeef);
    (0..n)
        .map(|_| (0..PROMPT_LEN).map(|_| rng.below(cfg.vocab)).collect())
        .collect()
}

/// Serve `jobs` on `nranks` ranks at the given offered rate (`None` =
/// submit everything immediately) and return the responses plus the mean
/// decode-phase batch occupancy.
fn serve(nranks: usize, jobs: &[Vec<usize>], gap: Option<Duration>) -> (Vec<Response>, f64, f64) {
    let started = Instant::now();
    let report = serve_run(
        ServerOptions {
            nranks,
            engine: engine_cfg(),
            trace: true,
        },
        |rank| DistTransformer::new(ModelConfig::tiny(), SEED, rank, nranks, A2aKind::Pairwise),
        |client| {
            let tickets: Vec<_> = jobs
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    if let (Some(gap), true) = (gap, i > 0) {
                        std::thread::sleep(gap);
                    }
                    client.submit(p.clone(), MAX_NEW)
                })
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("feasible request"))
                .collect::<Vec<_>>()
        },
    );
    let wall_s = started.elapsed().as_secs_f64();
    let trace = report.trace.expect("tracing on");
    let steps = trace.span_count(names::SERVE_DECODE_STEP);
    let occupancy = if steps > 0 {
        trace.counter_total(names::SERVE_BATCH_OCCUPANCY) as f64 / steps as f64
    } else {
        0.0
    };
    (report.output, occupancy, wall_s)
}

fn percentile_ms(responses: &[Response], p: f64) -> f64 {
    let mut ms: Vec<f64> = responses
        .iter()
        .map(|r| r.total_ns() as f64 / 1e6)
        .collect();
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ms[((ms.len() - 1) as f64 * p).round() as usize]
}

pub fn run() {
    println!("== E28: continuous-batching serving ==\n");

    // ---- 1. Bit-identity gates.
    println!("-- bit-identity gates --");
    let jobs = prompts(12);
    let mut rng = Rng::seed_from(SEED);
    let mut oracle_model = Transformer::new(ModelConfig::tiny(), &mut rng);
    let oracle: Vec<Vec<usize>> = jobs
        .iter()
        .map(|p| oracle_model.generate_cached(p, MAX_NEW))
        .collect();

    // Continuous batching under offered load (requests join mid-decode).
    let (responses, _, _) = serve(1, &jobs, Some(Duration::from_millis(1)));
    let mut got: Vec<(u64, Vec<usize>)> =
        responses.iter().map(|r| (r.id, r.tokens.clone())).collect();
    got.sort_by_key(|(id, _)| *id);
    for ((_, tokens), want) in got.iter().zip(&oracle) {
        assert_eq!(
            tokens, want,
            "continuous batching changed decoded tokens (gate 1)"
        );
    }
    println!("gate 1: staggered continuous batching == generate_cached ✓");

    // Expert-parallel serving on 4 ranks.
    let (responses, _, _) = serve(4, &jobs, None);
    let mut got: Vec<(u64, Vec<usize>)> =
        responses.iter().map(|r| (r.id, r.tokens.clone())).collect();
    got.sort_by_key(|(id, _)| *id);
    for ((_, tokens), want) in got.iter().zip(&oracle) {
        assert_eq!(
            tokens, want,
            "expert-parallel decode diverged from the single-rank oracle (gate 2)"
        );
    }
    println!("gate 2: 4-rank expert-parallel serving == single-rank oracle ✓\n");

    // ---- 2. Offered-load sweep (2 ranks).
    println!("-- offered load sweep (2 ranks, 24 requests) --");
    let sweep_jobs = prompts(24);
    let mut load_table = Table::new(&["offered", "p50", "p99", "tok/s", "occupancy"]);
    let mut load_rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for (label, gap) in [
        ("100 req/s", Some(Duration::from_millis(10))),
        ("400 req/s", Some(Duration::from_micros(2500))),
        ("full blast", None),
    ] {
        let (responses, occupancy, wall_s) = serve(2, &sweep_jobs, gap);
        let generated: usize = responses.iter().map(|r| r.generated().len()).sum();
        let p50 = percentile_ms(&responses, 0.50);
        let p99 = percentile_ms(&responses, 0.99);
        let tps = generated as f64 / wall_s;
        load_table.row(&[
            label.to_string(),
            format!("{p50:.2}ms"),
            format!("{p99:.2}ms"),
            format!("{tps:.0}"),
            format!("{occupancy:.2}"),
        ]);
        load_rows.push((label.to_string(), p50, p99, tps, occupancy));
    }
    load_table.print();

    // ---- 3. Saturation throughput vs rank count.
    println!("\n-- saturation vs rank count (full blast, 24 requests) --");
    let mut rank_table = Table::new(&["ranks", "tok/s", "occupancy", "wall"]);
    let mut rank_rows: Vec<(usize, f64, f64)> = Vec::new();
    for nranks in [1usize, 2, 4] {
        let (responses, occupancy, wall_s) = serve(nranks, &sweep_jobs, None);
        let generated: usize = responses.iter().map(|r| r.generated().len()).sum();
        let tps = generated as f64 / wall_s;
        rank_table.row(&[
            format!("{nranks}"),
            format!("{tps:.0}"),
            format!("{occupancy:.2}"),
            format!("{wall_s:.2}s"),
        ]);
        rank_rows.push((nranks, tps, occupancy));
    }
    rank_table.print();
    // On the tiny model the trend is honest but inverted: experts are so
    // small that the per-step all-to-all overhead of more ranks outweighs
    // the extra batch slots. The projection below shows the regime where
    // expert parallelism pays: paper-scale experts that cannot fit on one
    // node, where the exchange cost is the thing being optimized.
    println!(
        "(tiny-model caveat: per-step a2a overhead dominates toy experts, so\n\
         added ranks cost throughput here; see the 96k projection below)"
    );

    // ---- 4. α–β projection of per-token decode at 96,000 nodes.
    //
    // One decode step moves, per MoE block, each in-flight row to its
    // top-k experts and back: dispatch + combine, B·k·d·4 bytes each way
    // from every node, spread across n peers. Compute per-pair payloads
    // for the 14.5T preset at per-node batch B = 8, then price the
    // exchange with the same α–β machine model the training projections
    // use. Modeled, not measured — the honest split.
    println!("\n-- per-token decode a2a at 96,000 nodes (14.5T preset, modeled) --");
    let machine = MachineConfig::new_generation_sunway();
    let cost = CollectiveCost::new(machine);
    let paper = ModelConfig::bagualu_14_5t();
    let nodes = machine.nodes;
    let batch = 8usize; // in-flight rows per node
    let topk = 2usize;
    let bytes_per_node = batch * topk * paper.d_model * 4;
    let bytes_per_pair = (bytes_per_node / nodes).max(1);
    let moe_blocks = paper.n_moe_blocks();
    // Dispatch + combine per MoE block, per decode step.
    let a2a_calls = 2 * moe_blocks;

    let mut proj_table = Table::new(&["exchange", "a2a/step", "note"]);
    let mut proj_rows: Vec<(String, f64)> = Vec::new();
    let pairwise_s = cost.alltoall_pairwise(nodes, bytes_per_pair) * a2a_calls as f64;
    let hier_s = cost.alltoall_hierarchical(nodes, bytes_per_pair) * a2a_calls as f64;
    proj_table.row(&[
        "pairwise".into(),
        format!("{:.1}ms", pairwise_s * 1e3),
        "baseline".into(),
    ]);
    proj_rows.push(("pairwise".into(), pairwise_s));
    proj_table.row(&[
        "hierarchical".into(),
        format!("{:.1}ms", hier_s * 1e3),
        "supernode two-phase".into(),
    ]);
    proj_rows.push(("hierarchical".into(), hier_s));
    let mut locality_s = Vec::new();
    for frac in [0.5f64, 0.9] {
        let s = cost.alltoall_with_locality(nodes, bytes_per_node, frac) * a2a_calls as f64;
        proj_table.row(&[
            format!("locality {:.0}%", frac * 100.0),
            format!("{:.1}ms", s * 1e3),
            "placement + gate bias".into(),
        ]);
        proj_rows.push((format!("locality {:.0}%", frac * 100.0), s));
        locality_s.push(s);
    }
    proj_table.print();

    // Projection gates: the optimized exchange and rising locality must
    // both pay off, exactly as they do for training steps (E3/E25).
    assert!(
        hier_s < pairwise_s,
        "hierarchical decode a2a ({hier_s:.4}s) must beat pairwise ({pairwise_s:.4}s)"
    );
    assert!(
        locality_s[1] < locality_s[0],
        "higher intra-supernode locality must cut decode a2a"
    );
    println!(
        "\ngate: hierarchical {:.1}ms < pairwise {:.1}ms; locality 90% {:.1}ms < 50% {:.1}ms ✓",
        hier_s * 1e3,
        pairwise_s * 1e3,
        locality_s[1] * 1e3,
        locality_s[0] * 1e3
    );

    // Measured per-token decode on the functional runtime, for scale.
    let sat = rank_rows.last().unwrap();
    println!(
        "measured (tiny model, {} ranks): {:.0} tok/s at occupancy {:.2}",
        sat.0, sat.1, sat.2
    );

    // ---- Artifacts.
    let mut artifact =
        String::from("E28 serving: continuous batching + expert-parallel decode\n\n");
    artifact.push_str("offered load sweep (2 ranks):\n");
    artifact.push_str(&load_table.render());
    artifact.push_str("\nsaturation vs ranks (full blast):\n");
    artifact.push_str(&rank_table.render());
    artifact.push_str(&format!(
        "\nper-token decode a2a, 96k nodes, 14.5T preset (B={batch}, k={topk}, {moe_blocks} MoE blocks):\n"
    ));
    artifact.push_str(&proj_table.render());
    std::fs::create_dir_all("target/e28").expect("create target/e28");
    std::fs::write(TABLE_OUT, &artifact).expect("write serving table");

    let mut json = String::from("{\n  \"schema\": \"bagualu-serving/v1\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"prompt_len\": {PROMPT_LEN}, \"max_new\": {MAX_NEW}, \"requests\": {}}},\n",
        sweep_jobs.len()
    ));
    json.push_str(
        "  \"bit_identity\": {\"continuous_batching\": true, \"expert_parallel\": true},\n",
    );
    json.push_str("  \"offered_load\": [\n");
    for (i, (label, p50, p99, tps, occ)) in load_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"offered\": \"{label}\", \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \
             \"tokens_per_sec\": {tps:.1}, \"occupancy\": {occ:.3}}}{}\n",
            if i + 1 == load_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"saturation\": [\n");
    for (i, (nranks, tps, occ)) in rank_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"ranks\": {nranks}, \"tokens_per_sec\": {tps:.1}, \"occupancy\": {occ:.3}}}{}\n",
            if i + 1 == rank_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"projection_96k\": {{\"preset\": \"14.5t\", \"nodes\": {nodes}, \"batch_per_node\": {batch}, \
         \"topk\": {topk}, \"moe_blocks\": {moe_blocks}, \"a2a_per_step\": [\n"
    ));
    for (i, (name, s)) in proj_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"exchange\": \"{name}\", \"seconds\": {s:.6}}}{}\n",
            if i + 1 == proj_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]}\n}\n");
    std::fs::write(JSON_OUT, json).expect("write BENCH_serving.json");

    println!(
        "\nwrote {TABLE_OUT} and {JSON_OUT}\n\n\
         Shape check: at low offered load, latency is one request's prefill\n\
         plus its own decode; toward saturation, queue wait dominates the\n\
         p99 while throughput rises with batch occupancy — continuous\n\
         batching keeps decode slots full without ever changing a single\n\
         token (the bit-identity gates above). The projection prices the\n\
         same decode step's all-to-all on the full machine: small per-pair\n\
         payloads make decode latency-bound, which is exactly where the\n\
         supernode-aware exchange and locality-biased placement matter.\n"
    );
}
