//! E22 — fault-injected training: goodput vs MTBF × checkpoint interval.
//!
//! Crashes arrive as a seeded Poisson process (exponential inter-arrival
//! with the given MTBF, measured in steps); the trainer recovers from its
//! last checkpoint each time. Short checkpoint intervals waste time on
//! writes, long ones waste time re-executing lost steps — the classic
//! trade-off whose analytic optimum is the Young/Daly interval
//! τ_opt = √(2·δ·MTBF).

use crate::table::Table;
use bagualu::comm::FaultPlan;
use bagualu::trainer::{FtConfig, TrainConfig, Trainer};
use std::time::Instant;

const STEPS: usize = 24;
const MTBFS: [f64; 3] = [6.0, 12.0, 24.0];
const INTERVALS: [usize; 3] = [2, 4, 8];

/// Crash steps drawn from an exponential inter-arrival process,
/// deterministic in `seed`, deduplicated, within `(0, horizon)`.
fn exp_arrivals(seed: u64, mtbf_steps: f64, horizon: usize) -> Vec<usize> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut unit = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut t = 0.0;
    let mut out: Vec<usize> = Vec::new();
    loop {
        t += -unit().max(1e-12).ln() * mtbf_steps;
        let s = t as usize;
        if s >= horizon {
            break;
        }
        if s >= 1 && out.last() != Some(&s) {
            out.push(s);
        }
    }
    out
}

pub fn run() {
    println!("== E22: goodput under faults, MTBF x checkpoint interval ==\n");
    let cfg = TrainConfig {
        nranks: 2,
        steps: STEPS,
        ..TrainConfig::default()
    };
    let dir = std::env::temp_dir().join(format!("bagualu-e22-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Fault-free, checkpoint-free baseline: the goodput denominator.
    let base = Trainer::new(cfg).run();
    let step_s = cfg.steps as f64 * cfg.batch_per_rank as f64 * cfg.seq as f64 * cfg.nranks as f64
        / base.tokens_per_sec
        / cfg.steps as f64;

    // Checkpoint cost δ: run one fault-free job per interval and charge the
    // throughput difference; measured directly from one shard write below.
    let ckpt_probe = dir.join("probe");
    let probe = Trainer::new(cfg).run_ft(&FtConfig {
        ckpt_every: 1,
        ..FtConfig::new(&ckpt_probe)
    });
    let probe_step_s =
        cfg.steps as f64 * cfg.batch_per_rank as f64 * cfg.seq as f64 * cfg.nranks as f64
            / probe.tokens_per_sec
            / cfg.steps as f64;
    let delta_s = (probe_step_s - step_s).max(1e-6);

    println!(
        "baseline: {:.0} tokens/s, step {:.2} ms, checkpoint cost δ ≈ {:.2} ms\n",
        base.tokens_per_sec,
        step_s * 1e3,
        delta_s * 1e3
    );

    let mut t = Table::new(&[
        "MTBF (steps)",
        "crashes",
        "ckpt K",
        "restarts",
        "lost steps",
        "goodput",
        "Young/Daly τ_opt",
    ]);
    for (mi, &mtbf) in MTBFS.iter().enumerate() {
        // Walk seeds deterministically until the draw contains a failure —
        // a fault-free row says nothing about the interval trade-off.
        let mut seed = 42 + mi as u64;
        let mut arrivals = exp_arrivals(seed, mtbf, STEPS);
        while arrivals.is_empty() {
            seed += 1;
            arrivals = exp_arrivals(seed, mtbf, STEPS);
        }
        // The analytic optimum (shared with the tuner), seconds to steps.
        let tau_opt_s = bagualu::perfmodel::young_daly_tau_opt(delta_s, mtbf * step_s);
        let tau_opt_steps = tau_opt_s / step_s;
        let mut best: Option<(usize, f64)> = None;
        let mut rows = Vec::new();
        for &k in &INTERVALS {
            let mut plan = FaultPlan::new(9000 + mi as u64);
            for (i, &s) in arrivals.iter().enumerate() {
                plan = plan.crash(i % cfg.nranks, s);
            }
            let cell_dir = dir.join(format!("mtbf{mi}-k{k}"));
            let ft = FtConfig {
                plan,
                ckpt_every: k,
                max_restarts: arrivals.len() + 2,
                heartbeat_ms: 500,
                ..FtConfig::new(&cell_dir)
            };
            let start = Instant::now();
            let r = Trainer::new(cfg).run_ft(&ft);
            let _ = start;
            let goodput = r.tokens_per_sec / base.tokens_per_sec;
            if best.is_none_or(|(_, g)| goodput > g) {
                best = Some((k, goodput));
            }
            rows.push((k, r.restarts, r.lost_steps, goodput));
        }
        let (best_k, _) = best.unwrap();
        for (k, restarts, lost, goodput) in rows {
            t.row(&[
                format!("{mtbf:.0}"),
                format!("{}", arrivals.len()),
                format!("{k}{}", if k == best_k { " *" } else { "" }),
                format!("{restarts}"),
                format!("{lost}"),
                format!("{:.0}%", goodput * 100.0),
                format!("{tau_opt_steps:.1} steps"),
            ]);
        }
    }
    t.print();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nShape check: goodput falls as MTBF shrinks; for a given MTBF the best\n\
         measured interval (*) tracks the Young/Daly prediction — frequent\n\
         checkpoints pay off only when failures are frequent. At the paper's\n\
         scale (96,000 nodes) the machine-level MTBF makes this sizing, plus\n\
         sharded parallel checkpoint writes (E10), a first-order design input.\n"
    );
}
