//! E13 — cross-validation of the α–β cost models against the discrete-event
//! network simulator.
//!
//! The scaling projections (E2/E6/E9/E11) rest on closed-form collective
//! costs; this experiment replays the actual message patterns through the
//! event-level simulator (per-port and per-trunk serialization) at 512
//! nodes and compares makespans. Agreement in the bandwidth-dominated
//! regime validates the cost structure; the small-message rows quantify the
//! one modelling difference (the event sim releases all messages at once,
//! so it does not charge per-round latency).

use crate::table::Table;
use bagualu::hw::MachineConfig;
use bagualu::net::cost::CollectiveCost;
use bagualu::net::simnet::{Message, SimNet};

const NODES: usize = 512; // 2 supernodes of 256

/// Event-sim makespan of the *round-scheduled* pairwise all-to-all: round
/// `s` (a perfect matching `src → src+s`) is released when round `s-1`
/// completes — the structure the α–β model charges.
fn sim_pairwise_rounds(machine: MachineConfig, bytes: usize) -> f64 {
    let mut net = SimNet::new(machine);
    let mut t = 0.0f64;
    for s in 1..NODES {
        let round: Vec<Message> = (0..NODES)
            .map(|src| Message {
                src,
                dst: (src + s) % NODES,
                bytes,
                release: t,
            })
            .collect();
        t = net.makespan(&round);
    }
    t
}

/// Event-sim makespan of an *unscheduled* pairwise all-to-all: every
/// message released at once. Head-of-line blocking on ports emerges — the
/// reason real implementations schedule rounds at all.
fn sim_pairwise_blast(machine: MachineConfig, bytes: usize) -> f64 {
    let mut net = SimNet::new(machine);
    let mut msgs = Vec::with_capacity(NODES * (NODES - 1));
    for src in 0..NODES {
        for s in 1..NODES {
            let dst = (src + s) % NODES;
            msgs.push(Message {
                src,
                dst,
                bytes,
                release: 0.0,
            });
        }
    }
    net.makespan(&msgs)
}

/// Event-sim makespan of the two-phase hierarchical all-to-all: phase 2 is
/// released when phase 1 completes.
fn sim_hierarchical(machine: MachineConfig, bytes: usize) -> f64 {
    let s = machine.supernode_size;
    let sn = NODES / s;
    let mut net = SimNet::new(machine);
    // Phase 1: intra-supernode bundles of S·b to each local peer.
    let mut phase1 = Vec::new();
    for src in 0..NODES {
        let g = src / s;
        for j in 0..s {
            let dst = g * s + j;
            if dst != src {
                phase1.push(Message {
                    src,
                    dst,
                    bytes: sn * bytes,
                    release: 0.0,
                });
            }
        }
    }
    let t1 = net.makespan(&phase1);
    // Phase 2: inter-supernode bundles of s·b between same-index ranks.
    let mut phase2 = Vec::new();
    for src in 0..NODES {
        let (g, l) = (src / s, src % s);
        for t in 0..sn {
            if t != g {
                phase2.push(Message {
                    src,
                    dst: t * s + l,
                    bytes: s * bytes,
                    release: t1,
                });
            }
        }
    }
    net.makespan(&phase2)
}

pub fn run() {
    println!("== E13: cost model vs discrete-event simulation (512 nodes) ==\n");
    let machine = MachineConfig::sunway_subset(NODES);
    let cc = CollectiveCost::new(machine);
    let mut t = Table::new(&[
        "bytes/pair",
        "algorithm",
        "cost model",
        "event sim",
        "sim/model",
    ]);
    for &bytes in &[1024usize, 16 * 1024, 128 * 1024] {
        let model = cc.alltoall_pairwise(NODES, bytes);
        let sim = sim_pairwise_rounds(machine, bytes);
        t.row(&[
            format!("{bytes}"),
            "pairwise (scheduled)".into(),
            format!("{:.2} ms", model * 1e3),
            format!("{:.2} ms", sim * 1e3),
            format!("{:.2}", sim / model),
        ]);
        let blast = sim_pairwise_blast(machine, bytes);
        t.row(&[
            format!("{bytes}"),
            "pairwise (unscheduled)".into(),
            "—".into(),
            format!("{:.2} ms", blast * 1e3),
            format!("{:.2}", blast / model),
        ]);
        let model = cc.alltoall_hierarchical(NODES, bytes);
        let sim = sim_hierarchical(machine, bytes);
        t.row(&[
            format!("{bytes}"),
            "hierarchical".into(),
            format!("{:.2} ms", model * 1e3),
            format!("{:.2} ms", sim * 1e3),
            format!("{:.2}", sim / model),
        ]);
    }
    t.print();
    println!(
        "\nReading: with the round structure simulated, event-level results track\n\
         the α–β model for both algorithms — the projections in E2/E6/E9/E11\n\
         rest on validated costs. The unscheduled rows are a bonus finding: at\n\
         512 endpoints, head-of-line blocking makes a blast all-to-all up to two\n\
         orders of magnitude slower than its scheduled form, which is why every\n\
         real implementation (and this one) schedules rounds.\n"
    );
}
