//! E25 — measured expert-placement locality, end to end.
//!
//! E15 *models* what a higher intra-supernode traffic fraction buys on the
//! tapered interconnect; this experiment *measures* that fraction on the
//! functional runtime and closes the loop:
//!
//! 1. **measured local wire fraction** — the same training run under
//!    round-robin vs supernode-aware placement, with and without the
//!    gate's locality bias, classified by the transport's per-destination
//!    accounting (`comm.a2a.{intra,inter}.bytes`). The pairwise a2a keeps
//!    wire classification equal to logical token locality. The run *fails*
//!    unless supernode placement + bias beats the round-robin baseline
//!    strictly (CI runs this experiment as a regression gate).
//! 2. **trainer-level cross-check** — the `TrainConfig` path (placement +
//!    `locality_bias` knobs) must arm the same accounting, and the trace
//!    counters must agree with `CommStats` on every classified byte.
//! 3. **modeled step time** — the measured fractions plugged into E15's
//!    α–β locality model at full machine scale, next to E15's assumed
//!    what-if points, so the speedup column is grounded in a fraction the
//!    runtime actually achieved rather than a hypothesis.
//!
//! Self-addressed traffic never touches the wire (the transport hands the
//! self part over in memory), so the measured round-robin baseline is
//! `(s-1)/(n-1)` of wire bytes — slightly *below* the logical `s/n` token
//! fraction E15 quotes. Both are printed.

use crate::table::Table;
use bagualu::comm::harness::run_ranks_map;
use bagualu::comm::shm::{CommStats, Communicator};
use bagualu::comm::CommFamily;
use bagualu::hw::MachineConfig;
use bagualu::metrics::format_si;
use bagualu::model::config::ModelConfig;
use bagualu::model::moe::GateKind;
use bagualu::model::param::HasParams;
use bagualu::net::cost::CollectiveCost;
use bagualu::parallel::model_dist::DistTransformer;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::parallel::sync::sync_grads;
use bagualu::parallel::ExpertPlacement;
use bagualu::tensor::rng::Rng;
use bagualu::trace::names;
use bagualu::trainer::{TrainConfig, Trainer};

const TABLE_OUT: &str = "target/e25/placement-table.txt";

fn model(n_experts: usize) -> ModelConfig {
    ModelConfig {
        vocab: 64,
        d_model: 16,
        n_heads: 2,
        n_layers: 2,
        d_ff: 32,
        max_seq: 8,
        n_experts,
        moe_every: 2,
        gate: GateKind::Top2,
        capacity_factor: 2.0,
        aux_weight: 0.01,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    }
}

/// Train a few steps under `placement` on `nranks` ranks with supernodes of
/// `s` world ranks, and return rank 0's view of the shared traffic stats.
/// Uses the pairwise a2a so wire source/destination equals the logical
/// token route, and arms the accounting explicitly so even the round-robin
/// baseline (which no supernode knob would otherwise arm) is classified.
fn measure(nranks: usize, s: usize, placement: ExpertPlacement, bias: f32) -> CommStats {
    let cfg = model(2 * nranks);
    let per_rank = 2usize;
    let seq = 8usize;
    let mut data_rng = Rng::seed_from(4242);
    let n = nranks * per_rank * seq;
    let tokens: Vec<usize> = (0..n).map(|_| data_rng.below(cfg.vocab)).collect();
    let targets: Vec<usize> = (0..n).map(|_| data_rng.below(cfg.vocab)).collect();
    let (tokens_ref, targets_ref) = (&tokens, &targets);
    let mut stats = run_ranks_map(nranks, move |c| {
        c.set_supernode_size(s);
        let mut dist =
            DistTransformer::new_placed(cfg, 1234, c.rank(), nranks, A2aKind::Pairwise, placement);
        if bias != 0.0 {
            dist.set_locality_bias(bias, s);
        }
        let lo = c.rank() * per_rank * seq;
        let tok = tokens_ref[lo..lo + per_rank * seq].to_vec();
        let tgt = targets_ref[lo..lo + per_rank * seq].to_vec();
        for _ in 0..6 {
            dist.train_batch(&tok, &tgt, per_rank, seq, &c);
            sync_grads(&mut dist, &c);
            dist.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.1, &g);
            });
            dist.zero_grad();
        }
        c.stats().expect("ShmComm collects stats")
    });
    stats.swap_remove(0)
}

pub fn run() {
    println!("== E25: measured expert-placement locality ==\n");
    let mut artifact = String::new();

    // ---- 1. Measured local wire fraction per placement policy.
    let nranks = 8usize;
    println!("-- measured a2a local fraction (8 ranks, 16 experts, pairwise a2a) --");
    let mut t = Table::new(&[
        "supernode",
        "placement",
        "bias",
        "intra",
        "inter",
        "local frac",
        "wire baseline",
    ]);
    let mut measured: Vec<(usize, f64, f64)> = Vec::new(); // (s, rr frac, best frac)
    for s in [2usize, 4] {
        let wire_baseline = (s - 1) as f64 / (nranks - 1) as f64;
        let mut fracs = Vec::new();
        for (placement, bias, label) in [
            (ExpertPlacement::RoundRobin, 0.0f32, "round-robin"),
            (
                ExpertPlacement::Supernode { supernode_size: s },
                0.0,
                "supernode",
            ),
            (
                ExpertPlacement::Supernode { supernode_size: s },
                2.0,
                "supernode",
            ),
            (
                ExpertPlacement::Supernode { supernode_size: s },
                6.0,
                "supernode",
            ),
        ] {
            let stats = measure(nranks, s, placement, bias);
            // The split must account for every a2a byte the transport sent.
            assert_eq!(
                stats.a2a_intra_bytes + stats.a2a_inter_bytes,
                stats.family(CommFamily::Alltoall).bytes,
                "intra+inter must cover the alltoall family"
            );
            let frac = stats
                .a2a_local_fraction()
                .expect("accounting armed via set_supernode_size");
            fracs.push(frac);
            t.row(&[
                format!("{s}"),
                label.into(),
                format!("{bias}"),
                format_si(stats.a2a_intra_bytes as f64, "B"),
                format_si(stats.a2a_inter_bytes as f64, "B"),
                format!("{:.1}%", frac * 100.0),
                format!("{:.1}%", wire_baseline * 100.0),
            ]);
        }
        // The regression gate: supernode-aware placement with a biased gate
        // must keep strictly more traffic local than round-robin, which
        // sits near the uniform-routing wire baseline.
        let rr = fracs[0];
        let best = fracs.iter().copied().fold(0.0f64, f64::max);
        assert!(
            best > rr,
            "supernode placement must beat round-robin locality: {best} vs {rr}"
        );
        assert!(
            fracs[3] > wire_baseline,
            "biased gate must beat the uniform wire baseline {wire_baseline}: {}",
            fracs[3]
        );
        measured.push((s, rr, best));
    }
    t.print();
    artifact.push_str("measured a2a local fraction (8 ranks, 16 experts)\n");
    artifact.push_str(&t.render());
    println!(
        "\nUnbiased runs sit near the uniform wire baseline (s-1)/(n-1)\n\
         whatever the placement — placement alone moves experts, not tokens.\n\
         The locality-biased gate is what converts co-location into locality,\n\
         and it needs the supernode-aware placement to have something local\n\
         to aim at.\n"
    );

    // ---- 2. Trainer-level cross-check: config knobs + trace counters.
    println!("-- trainer path (placement/locality_bias knobs, trace counters) --");
    let cfg = TrainConfig {
        model: model(8),
        nranks: 4,
        batch_per_rank: 2,
        seq: 8,
        steps: 6,
        placement: ExpertPlacement::Supernode { supernode_size: 2 },
        locality_bias: 4.0,
        trace: true,
        ..TrainConfig::default()
    };
    let r = Trainer::new(cfg).run();
    assert!(r.final_loss().is_finite());
    assert_eq!(
        r.placement,
        ExpertPlacement::Supernode { supernode_size: 2 }
    );
    let stats = r.comm_stats.as_ref().expect("ShmComm collects stats");
    let trace = r.trace.as_ref().expect("trace requested");
    assert_eq!(
        trace.counter_total(names::A2A_INTRA_BYTES),
        stats.a2a_intra_bytes,
        "trace intra counter must match CommStats"
    );
    assert_eq!(
        trace.counter_total(names::A2A_INTER_BYTES),
        stats.a2a_inter_bytes,
        "trace inter counter must match CommStats"
    );
    let trainer_frac = stats.a2a_local_fraction().expect("accounting armed");
    println!(
        "supernode:2 + bias 4 on 4 ranks: intra {} | inter {} | local {:.1}% (counters agree)\n",
        format_si(stats.a2a_intra_bytes as f64, "B"),
        format_si(stats.a2a_inter_bytes as f64, "B"),
        trainer_frac * 100.0
    );
    artifact.push_str(&format!(
        "\ntrainer path: supernode:2 + bias 4 on 4 ranks -> local {:.1}%\n",
        trainer_frac * 100.0
    ));

    // ---- 3. The measured fractions in E15's cost model at machine scale.
    println!("-- modeled one-layer a2a at 96,000 nodes (E15's locality model) --");
    let machine = MachineConfig::new_generation_sunway();
    let cc = CollectiveCost::new(machine);
    let m = ModelConfig::bagualu_14_5t();
    let tokens_per_node = 2048.0;
    let volume = (tokens_per_node * m.gate.k() as f64 * m.d_model as f64 * 2.0) as usize;
    let baseline_frac = machine.supernode_size as f64 / machine.nodes as f64;
    let base_time = cc.alltoall_with_locality(machine.nodes, volume, baseline_frac);
    let mut t = Table::new(&["local fraction", "source", "one a2a", "speedup"]);
    let mut rows: Vec<(f64, String)> = vec![
        (baseline_frac, "round-robin s/n (E15 baseline)".into()),
        (0.25, "E15 what-if: locality-biased gate".into()),
        (0.50, "E15 what-if: hot experts replicated".into()),
    ];
    for (s, rr, best) in &measured {
        rows.push((*rr, format!("measured: round-robin (s={s})")));
        rows.push((*best, format!("measured: supernode + bias (s={s})")));
    }
    for (frac, label) in rows {
        let one = cc.alltoall_with_locality(machine.nodes, volume, frac);
        t.row(&[
            format!("{:.2}%", frac * 100.0),
            label,
            format!("{:.2} ms", one * 1e3),
            format!("{:.2}x", base_time / one),
        ]);
    }
    t.print();
    artifact.push_str("\nmodeled one-layer a2a at 96,000 nodes\n");
    artifact.push_str(&t.render());
    println!(
        "\nThe biased-gate fractions the runtime measures land at or above\n\
         E15's assumed locality points, so E15's modeled speedups are\n\
         achievable with placement + gate bias alone — before any expert\n\
         replication. At the full machine the round-robin fraction is\n\
         s/n ≈ 0.27%, far below what the 8-rank harness can exhibit, which\n\
         is why the measured fractions are fed to the model as what-ifs\n\
         rather than extrapolated.\n"
    );

    std::fs::create_dir_all("target/e25").expect("create target/e25");
    std::fs::write(TABLE_OUT, &artifact).expect("write placement table");
    println!("wrote {TABLE_OUT}");
}
