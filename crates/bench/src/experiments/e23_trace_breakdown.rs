//! E23 — step-time breakdown from the structured trace alone.
//!
//! Every number in this table is derived from `TrainReport::trace` — no
//! timers in the experiment itself. Per rank count we run the functional
//! trainer with the bucketed overlapped sync and periodic checkpoints
//! (fault-free `run_ft`), then decompose the traced time into:
//!
//! * **compute** — STEP span time minus everything below,
//! * **exposed comm** — GRAD_SYNC + A2A_DISPATCH + A2A_COMBINE span time
//!   (communication the step actually waited on),
//! * **overlapped comm** — the `sync.overlap_poll_ns` counter: wall time
//!   spent driving in-flight rings *inside* the backward pass (hidden),
//! * **checkpoint** — CHECKPOINT span time (outside the STEP span).
//!
//! The 4-rank run's merged Chrome export is written to
//! `target/e23/trace-4rank.json` (CI uploads it as an artifact; open it at
//! <https://ui.perfetto.dev>). See `docs/OBSERVABILITY.md` for the span and
//! counter taxonomy this decomposition relies on.

use crate::table::Table;
use bagualu::model::config::ModelConfig;
use bagualu::model::moe::GateKind;
use bagualu::trace::names;
use bagualu::trainer::{FtConfig, TrainConfig, Trainer};

/// Rank counts to sweep; `n_experts` (64) must divide each of them.
const RANKS: [usize; 6] = [2, 4, 8, 16, 32, 64];
const TRACE_OUT: &str = "target/e23/trace-4rank.json";

fn model() -> ModelConfig {
    ModelConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        max_seq: 8,
        n_experts: 64,
        moe_every: 2,
        gate: GateKind::Top2,
        capacity_factor: 2.0,
        aux_weight: 0.01,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    }
}

pub fn run() {
    println!("== E23: step-time breakdown from trace data alone ==\n");
    let dir = std::env::temp_dir().join(format!("bagualu-e23-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut t = Table::new(&[
        "ranks",
        "step avg",
        "compute",
        "matmul (meas)",
        "gflop/s",
        "exposed comm",
        "overlapped comm",
        "checkpoint",
        "comm hidden",
    ]);
    for &nranks in &RANKS {
        let cfg = TrainConfig {
            model: model(),
            nranks,
            batch_per_rank: 1,
            seq: 8,
            steps: 4,
            overlap: true,
            bucket_bytes: 4 << 10,
            trace: true,
            ..TrainConfig::default()
        };
        let ft = FtConfig {
            ckpt_every: 2,
            ..FtConfig::new(dir.join(format!("r{nranks}")))
        };
        let report = Trainer::new(cfg).run_ft(&ft);
        assert_eq!(report.restarts, 0, "fault-free run must not restart");
        let trace = report.trace.as_ref().expect("trace requested");

        // Everything below comes from the trace, nothing from timers.
        let step_ns = trace.span_total_ns(names::STEP);
        let exposed = trace.span_total_ns(names::GRAD_SYNC)
            + trace.span_total_ns(names::A2A_DISPATCH)
            + trace.span_total_ns(names::A2A_COMBINE);
        let hidden = trace.counter_total(names::OVERLAP_POLL_NS);
        let ckpt = trace.span_total_ns(names::CHECKPOINT);
        let compute = step_ns.saturating_sub(exposed + hidden);
        // Honest compute attribution: the "compute" column above is STEP
        // minus comm (inference); the matmul column is what the kernels
        // *measured* about themselves via compute.matmul.{ns,flops}.
        let mm_ns = trace.counter_total(names::COMPUTE_MATMUL_NS);
        let mm_flops = trace.counter_total(names::COMPUTE_MATMUL_FLOPS);
        assert!(mm_ns > 0, "instrumented kernels must have recorded time");
        let mm_gflops = mm_flops as f64 / mm_ns as f64;
        let total = step_ns + ckpt;
        let pct = |x: u64| format!("{:.1}%", x as f64 / total as f64 * 100.0);
        let comm = exposed + hidden;
        let hidden_share = if comm > 0 {
            format!("{:.0}%", hidden as f64 / comm as f64 * 100.0)
        } else {
            "n/a".into()
        };
        t.row(&[
            format!("{nranks}"),
            // Per-rank average step time: lanes record in parallel, so the
            // summed span time divides by ranks × steps.
            format!(
                "{:.2} ms",
                step_ns as f64 / (nranks * cfg.steps) as f64 / 1e6
            ),
            pct(compute),
            pct(mm_ns),
            format!("{mm_gflops:.2}"),
            pct(exposed),
            pct(hidden),
            pct(ckpt),
            hidden_share,
        ]);

        if nranks == 4 {
            std::fs::create_dir_all("target/e23").expect("create target/e23");
            std::fs::write(TRACE_OUT, trace.to_chrome_json()).expect("write trace JSON");
        }
    }
    t.print();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nwrote {TRACE_OUT} (load it at https://ui.perfetto.dev)\n\n\
         Shape check: with 64 experts spread over more ranks, each rank's\n\
         compute shrinks while the all-to-all fans out wider, so the\n\
         communication share of the step grows with scale — the trend the\n\
         paper's hierarchical collectives and aggressive overlap exist to\n\
         fight. 'comm hidden' is the fraction of all communication time the\n\
         bucketed sync managed to bury inside backward; the checkpoint\n\
         column is the steady-state fault-tolerance tax from E22's δ.\n\
         'matmul (meas)' is the directly instrumented GEMM time\n\
         (compute.matmul.ns) — the measured slice of the inferred compute\n\
         column — and 'gflop/s' the throughput those kernels sustained\n\
         (E26 benchmarks the same counter-pair per backend in isolation).\n"
    );
}
