//! E7 — per-node memory footprint vs model scale.
//!
//! Parameters are half precision, optimizer state is FP32 Adam + master
//! weights (12 B/param). Experts are inherently sharded by expert
//! parallelism; the ablation is whether the *dense* optimizer state is
//! ZeRO-style sharded or replicated. The 174T row is the fit-or-not
//! question the whole system design answers.

use crate::table::Table;
use bagualu::hw::{MachineConfig, MemoryBudget};
use bagualu::metrics::format_params;
use bagualu::model::config::ModelConfig;

pub fn run() {
    println!("== E7: per-node memory on 96,000 nodes (96 GiB/node budget) ==\n");
    let machine = MachineConfig::new_generation_sunway();
    let nodes = machine.nodes;
    let budget_gib = (machine.processor.mem_capacity >> 30) as f64;
    // Activation footprint for a 2048-token micro-batch, checkpointed:
    // ~2 bytes × tokens × d_model × layers (stored once per layer).
    let act = |m: &ModelConfig| 2.0 * 2048.0 * m.d_model as f64 * m.n_layers as f64;

    let mut t = Table::new(&[
        "preset",
        "params",
        "dense opt",
        "params+grads (GiB)",
        "optimizer (GiB)",
        "total (GiB)",
        "fits 96 GiB",
    ]);
    for (name, cfg) in [
        ("1.93T", ModelConfig::bagualu_1_93t()),
        ("14.5T", ModelConfig::bagualu_14_5t()),
        ("174T", ModelConfig::bagualu_174t()),
    ] {
        for sharded in [false, true] {
            let b = MemoryBudget::per_node(
                cfg.dense_params() as f64,
                cfg.expert_params() as f64,
                nodes,
                2.0,
                sharded,
                act(&cfg),
            );
            let total = b.total_gib();
            t.row(&[
                name.into(),
                format_params(cfg.count_params()),
                if sharded {
                    "sharded".into()
                } else {
                    "replicated".into()
                },
                format!("{:.1}", (b.params + b.grads) / (1u64 << 30) as f64),
                format!("{:.1}", b.optimizer / (1u64 << 30) as f64),
                format!("{total:.1}"),
                if total <= budget_gib {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    t.print();

    println!("\n— optimizer choice (per-parameter state, 174T preset per node) —\n");
    let mut t = Table::new(&["optimizer", "state B/param", "optimizer GiB/node", "note"]);
    let cfg = ModelConfig::bagualu_174t();
    let params_per_node =
        (cfg.dense_params() as f64 / nodes as f64) + cfg.expert_params() as f64 / nodes as f64;
    // Dense-sharded baseline comparison at per-node granularity.
    for (name, bytes, note) in [
        ("Adam + fp32 master", 12.0, "m + v + master"),
        (
            "Adafactor + fp32 master",
            4.05,
            "row/col factored 2nd moment",
        ),
        (
            "Adafactor, no master",
            0.05,
            "bf16 weights updated in place",
        ),
    ] {
        t.row(&[
            name.into(),
            format!("{bytes}"),
            format!("{:.1}", params_per_node * bytes / (1u64 << 30) as f64),
            note.into(),
        ]);
    }
    t.print();
    println!(
        "\nShape check: expert parallelism already shards the dominant state; dense\n\
         optimizer sharding removes the remaining replicated gigabytes, and\n\
         Adafactor (implemented in bagualu-optim, tested to train comparably)\n\
         cuts the per-parameter optimizer state ~3x further. The 174T brain-\n\
         scale preset fits only because experts are never replicated.\n"
    );
}
