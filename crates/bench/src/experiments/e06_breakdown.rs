//! E6 — per-step time breakdown vs machine scale (14.5T preset).

use crate::table::Table;
use bagualu::model::config::ModelConfig;
use bagualu::perfmodel::{project, PerfInput};

pub fn run() {
    println!("== E6: step-time breakdown, 14.5T preset, hierarchical collectives ==\n");
    let mut t = Table::new(&[
        "nodes",
        "dense (s)",
        "gate (s)",
        "experts (s)",
        "a2a (s)",
        "allreduce (s)",
        "total (s)",
        "comm %",
    ]);
    for &nodes in &[1024usize, 8192, 49152, 96_000] {
        let p = project(&PerfInput::sunway_nodes(
            ModelConfig::bagualu_14_5t(),
            nodes,
        ));
        let b = p.breakdown;
        t.row(&[
            format!("{nodes}"),
            format!("{:.3}", b.dense_compute),
            format!("{:.3}", b.gate_compute),
            format!("{:.3}", b.expert_compute),
            format!("{:.3}", b.a2a),
            format!("{:.3}", b.allreduce),
            format!("{:.3}", p.step_time),
            format!("{:.1}%", 100.0 * b.comm_fraction()),
        ]);
    }
    t.print();

    println!("\n— same, with the naive (pairwise + flat-ring) collectives —\n");
    let mut t = Table::new(&["nodes", "a2a (s)", "allreduce (s)", "total (s)", "comm %"]);
    for &nodes in &[1024usize, 8192, 49152, 96_000] {
        let p = project(&PerfInput {
            hierarchical_a2a: false,
            hierarchical_allreduce: false,
            ..PerfInput::sunway_nodes(ModelConfig::bagualu_14_5t(), nodes)
        });
        let b = p.breakdown;
        t.row(&[
            format!("{nodes}"),
            format!("{:.3}", b.a2a),
            format!("{:.3}", b.allreduce),
            format!("{:.3}", p.step_time),
            format!("{:.1}%", 100.0 * b.comm_fraction()),
        ]);
    }
    t.print();
    println!(
        "\nShape check: with naive collectives, communication swallows the step at\n\
         full scale; the hierarchical algorithms hold the comm share roughly flat,\n\
         which is what makes the weak-scaling curve in E2 near-linear.\n"
    );
}
