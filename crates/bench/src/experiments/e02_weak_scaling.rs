//! E2 — weak scaling of MoDa hybrid parallelism, 256 → 96,000 nodes.
//!
//! The model grows with the machine (9/8 experts per node, matching the
//! 174T preset at full scale); per-node batch is fixed. Reported per point:
//! throughput, per-node efficiency relative to the smallest machine, and
//! the pairwise-vs-hierarchical all-to-all ablation.

use crate::table::Table;
use bagualu::metrics::{format_params, format_si};
use bagualu::model::config::ModelConfig;
use bagualu::perfmodel::{project, PerfInput};

/// The preset family used for scaling: experts grow with the machine.
pub fn model_for_nodes(nodes: usize) -> ModelConfig {
    ModelConfig {
        n_experts: nodes * 9 / 8,
        ..ModelConfig::bagualu_174t()
    }
}

pub fn run() {
    println!("== E2: weak scaling (model grows with machine, fixed per-node batch) ==\n");
    let node_counts = [256usize, 1024, 4096, 16384, 49152, 96_000];

    let mut t = Table::new(&[
        "nodes",
        "params",
        "tok/s (hier)",
        "tok/s (pairwise)",
        "hier speedup",
        "per-node eff",
    ]);
    let mut base_per_node = None;
    for &nodes in &node_counts {
        let model = model_for_nodes(nodes);
        let hier = project(&PerfInput::sunway_nodes(model, nodes));
        let flat = project(&PerfInput {
            hierarchical_a2a: false,
            hierarchical_allreduce: false,
            ..PerfInput::sunway_nodes(model, nodes)
        });
        let per_node = hier.tokens_per_sec / nodes as f64;
        let base = *base_per_node.get_or_insert(per_node);
        t.row(&[
            format!("{nodes}"),
            format_params(model.count_params()),
            format_si(hier.tokens_per_sec, "tok/s"),
            format_si(flat.tokens_per_sec, "tok/s"),
            format!("{:.2}x", hier.tokens_per_sec / flat.tokens_per_sec),
            format!("{:.1}%", 100.0 * per_node / base),
        ]);
    }
    t.print();
    println!(
        "\nShape check: hierarchical collectives keep per-node efficiency high at\n\
         full scale, while the pairwise baseline collapses (latency-bound all-to-all\n\
         across 96k endpoints). The speedup column is the paper's headline ablation.\n"
    );
}
