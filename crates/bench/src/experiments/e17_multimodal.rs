//! E17 — expert modality specialization on a multimodal stream.
//!
//! Brain-scale pretrained models are multimodal (image + text). A question
//! the MoE design answers implicitly: do experts *specialize* by modality
//! when nothing forces them to? Train a small MoE on the synthetic
//! image+caption task, then probe the gate: for each expert, the share of
//! its routed tokens that are image patches. Specialization = experts far
//! from the 50/50 input mix.

use crate::table::Table;
use bagualu::data::{Modality, MultimodalLM};
use bagualu::model::config::ModelConfig;
use bagualu::model::moe::GateKind;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::{BlockFfn, Transformer};
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::tensor::rng::Rng;

const EXPERTS: usize = 8;

fn modality_shares(
    model: &mut Transformer,
    task: &MultimodalLM,
    steps: usize,
) -> Vec<(f64, usize)> {
    // Probe several batches; count image tokens per expert.
    let mut img = [0usize; EXPERTS];
    let mut tot = [0usize; EXPERTS];
    for step in 0..steps {
        let (tokens, _) = task.batch(4, 8, 7, 1000 + step);
        model.forward(&tokens, 4, 8);
        for b in &model.blocks {
            if let BlockFfn::MoE(m) = &b.ffn {
                let r = m.last_routing().unwrap();
                for a in &r.assignments {
                    tot[a.expert] += 1;
                    if task.modality_of(tokens[a.token]) == Modality::Image {
                        img[a.expert] += 1;
                    }
                }
            }
        }
    }
    (0..EXPERTS)
        .map(|e| {
            let share = if tot[e] == 0 {
                0.5
            } else {
                img[e] as f64 / tot[e] as f64
            };
            (share, tot[e])
        })
        .collect()
}

pub fn run() {
    println!("== E17: expert modality specialization (image+text stream, 8 experts) ==\n");
    let cfg = ModelConfig {
        vocab: 64,
        n_experts: EXPERTS,
        gate: GateKind::Top1,
        capacity_factor: 2.0,
        aux_weight: 0.01,
        ..ModelConfig::tiny()
    };
    let task = MultimodalLM::new(16, 48, 99);
    assert!(task.total_vocab() <= cfg.vocab);

    let mut rng = Rng::seed_from(17);
    let mut model = Transformer::new(cfg, &mut rng);
    let before = modality_shares(&mut model, &task, 8);

    let mut opt = Adam::new(AdamConfig {
        lr: 1e-2,
        ..Default::default()
    });
    for step in 0..300 {
        let (tokens, targets) = task.batch(4, 8, 0, step);
        model.train_batch(&tokens, &targets, 4, 8);
        opt.step(&mut model);
        model.zero_grad();
    }
    let after = modality_shares(&mut model, &task, 8);

    let mut t = Table::new(&[
        "expert",
        "image share (init)",
        "image share (trained)",
        "tokens (trained)",
    ]);
    for e in 0..EXPERTS {
        t.row(&[
            format!("{e}"),
            format!("{:.0}%", before[e].0 * 100.0),
            format!("{:.0}%", after[e].0 * 100.0),
            format!("{}", after[e].1),
        ]);
    }
    t.print();

    let specialization = |shares: &[(f64, usize)]| {
        // Token-weighted mean distance from the 50/50 mix.
        let total: usize = shares.iter().map(|(_, n)| n).sum();
        shares
            .iter()
            .map(|&(s, n)| (s - 0.5).abs() * 2.0 * n as f64 / total as f64)
            .sum::<f64>()
    };
    println!(
        "\nspecialization index (0 = mixed, 1 = fully separated): init {:.2} → trained {:.2}",
        specialization(&before),
        specialization(&after)
    );
    println!(
        "\nShape check: training drives experts toward single-modality traffic —\n\
         the division of labour that makes scaling expert count productive on\n\
         multimodal corpora.\n"
    );
}
