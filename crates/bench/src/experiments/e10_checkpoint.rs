//! E10 — checkpoint save/load throughput, monolithic vs sharded.

use crate::table::Table;
use bagualu::checkpoint::load_params_sharded;
use bagualu::checkpoint::{load_params, save_params, save_params_sharded};
use bagualu::metrics::format_bytes;
use bagualu::model::config::ModelConfig;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::Transformer;
use bagualu::tensor::rng::Rng;
use std::time::Instant;

pub fn run() {
    println!("== E10: checkpoint throughput (functional model, tmpfs-backed) ==\n");
    // A model big enough to measure (~13M params ≈ 53 MB of f32).
    let cfg = ModelConfig {
        vocab: 2048,
        d_model: 256,
        n_heads: 8,
        n_layers: 4,
        d_ff: 1024,
        max_seq: 64,
        n_experts: 16,
        moe_every: 2,
        ..ModelConfig::tiny()
    };
    let mut rng = Rng::seed_from(1);
    let mut model = Transformer::new(cfg, &mut rng);
    println!("model: {} parameters\n", model.num_params());

    let dir = std::env::temp_dir().join(format!("bagualu-e10-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut t = Table::new(&["mode", "bytes", "save (MB/s)", "load (MB/s)", "verified"]);

    // Monolithic.
    let path = dir.join("model.bglu");
    let start = Instant::now();
    let bytes = save_params(&path, &mut model).unwrap();
    let save_t = start.elapsed().as_secs_f64();
    let mut clone = Transformer::new(cfg, &mut Rng::seed_from(2));
    let start = Instant::now();
    load_params(&path, &mut clone).unwrap();
    let load_t = start.elapsed().as_secs_f64();
    let mut ok = true;
    let mut vals = Vec::new();
    model.visit_params(&mut |p| vals.push(p.value.clone()));
    let mut i = 0;
    clone.visit_params(&mut |p| {
        ok &= p.value.approx_eq(&vals[i], 0.0);
        i += 1;
    });
    t.row(&[
        "monolithic".into(),
        format_bytes(bytes as f64),
        format!("{:.0}", bytes as f64 / 1e6 / save_t),
        format!("{:.0}", bytes as f64 / 1e6 / load_t),
        if ok { "yes".into() } else { "NO".into() },
    ]);

    // Sharded ×8.
    let shard_dir = dir.join("shards");
    let start = Instant::now();
    let bytes = save_params_sharded(&shard_dir, &mut model, 8).unwrap();
    let save_t = start.elapsed().as_secs_f64();
    let mut clone = Transformer::new(cfg, &mut Rng::seed_from(3));
    let start = Instant::now();
    load_params_sharded(&shard_dir, &mut clone, 8).unwrap();
    let load_t = start.elapsed().as_secs_f64();
    let mut ok = true;
    let mut i = 0;
    clone.visit_params(&mut |p| {
        ok &= p.value.approx_eq(&vals[i], 0.0);
        i += 1;
    });
    t.row(&[
        "sharded x8".into(),
        format_bytes(bytes as f64),
        format!("{:.0}", bytes as f64 / 1e6 / save_t),
        format!("{:.0}", bytes as f64 / 1e6 / load_t),
        if ok { "yes".into() } else { "NO".into() },
    ]);

    t.print();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nShape check: sharding adds negligible overhead at equal volume and is\n\
         what lets 96,000 ranks checkpoint disjoint expert shards concurrently\n\
         (at scale, aggregate bandwidth multiplies by the writer count).\n"
    );
}
