//! E14 — communication/compute overlap ablation.
//!
//! The dense all-reduce can start per-layer as soon as each layer's
//! backward finishes, and the MoE combine can overlap the next layer's
//! compute. This ablation sweeps the overlapped fraction at full machine
//! scale to show how much of the remaining communication cost is
//! recoverable by scheduling (the original system overlaps aggressively).

use crate::table::Table;
use bagualu::metrics::{format_flops, format_si};
use bagualu::model::config::ModelConfig;
use bagualu::perfmodel::{project, PerfInput};

pub fn run() {
    println!("== E14: communication/compute overlap, 14.5T preset, 96,000 nodes ==\n");
    let mut t = Table::new(&[
        "overlap", "step time", "tokens/s", "sustained", "gain vs serial",
    ]);
    let serial = project(&PerfInput::sunway_full(ModelConfig::bagualu_14_5t()));
    for &ov in &[0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let p = project(&PerfInput {
            overlap: ov,
            ..PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
        });
        t.row(&[
            format!("{:.0}%", ov * 100.0),
            format!("{:.2} s", p.step_time),
            format_si(p.tokens_per_sec, "tok/s"),
            format_flops(p.sustained_flops),
            format!("{:.2}x", serial.step_time / p.step_time),
        ]);
    }
    t.print();

    println!("\n— overlap is worth more when the collectives are naive —\n");
    let mut t = Table::new(&["collectives", "serial", "fully overlapped", "gain"]);
    for (label, hier) in [("hierarchical", true), ("naive", false)] {
        let mk = |ov| {
            project(&PerfInput {
                overlap: ov,
                hierarchical_a2a: hier,
                hierarchical_allreduce: hier,
                ..PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
            })
        };
        let s = mk(0.0);
        let o = mk(1.0);
        t.row(&[
            label.into(),
            format!("{:.2} s", s.step_time),
            format!("{:.2} s", o.step_time),
            format!("{:.2}x", s.step_time / o.step_time),
        ]);
    }
    t.print();
    println!(
        "\nShape check: with hierarchical collectives, comm ≈ compute at full\n\
         scale, so perfect overlap roughly halves the step; with naive\n\
         collectives comm exceeds compute so even perfect overlap cannot save\n\
         the step — algorithms first, scheduling second.\n"
    );
}
