//! E14 — communication/compute overlap ablation.
//!
//! The dense all-reduce can start per-layer as soon as each layer's
//! backward finishes, and the MoE combine can overlap the next layer's
//! compute. This ablation sweeps the overlapped fraction at full machine
//! scale to show how much of the remaining communication cost is
//! recoverable by scheduling (the original system overlaps aggressively).

use crate::table::Table;
use bagualu::metrics::{format_flops, format_si};
use bagualu::model::config::ModelConfig;
use bagualu::model::moe::GateKind;
use bagualu::perfmodel::{project, PerfInput};
use bagualu::trainer::{TrainConfig, Trainer};

pub fn run() {
    println!("== E14: communication/compute overlap, 14.5T preset, 96,000 nodes ==\n");
    let mut t = Table::new(&[
        "overlap",
        "step time",
        "tokens/s",
        "sustained",
        "gain vs serial",
    ]);
    let serial = project(&PerfInput::sunway_full(ModelConfig::bagualu_14_5t()));
    for &ov in &[0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let p = project(&PerfInput {
            overlap: ov,
            ..PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
        });
        t.row(&[
            format!("{:.0}%", ov * 100.0),
            format!("{:.2} s", p.step_time),
            format_si(p.tokens_per_sec, "tok/s"),
            format_flops(p.sustained_flops),
            format!("{:.2}x", serial.step_time / p.step_time),
        ]);
    }
    t.print();

    println!("\n— overlap is worth more when the collectives are naive —\n");
    let mut t = Table::new(&["collectives", "serial", "fully overlapped", "gain"]);
    for (label, hier) in [("hierarchical", true), ("naive", false)] {
        let mk = |ov| {
            project(&PerfInput {
                overlap: ov,
                hierarchical_a2a: hier,
                hierarchical_allreduce: hier,
                ..PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
            })
        };
        let s = mk(0.0);
        let o = mk(1.0);
        t.row(&[
            label.into(),
            format!("{:.2} s", s.step_time),
            format!("{:.2} s", o.step_time),
            format!("{:.2}x", s.step_time / o.step_time),
        ]);
    }
    t.print();
    println!(
        "\nShape check: with hierarchical collectives, comm ≈ compute at full\n\
         scale, so perfect overlap roughly halves the step; with naive\n\
         collectives comm exceeds compute so even perfect overlap cannot save\n\
         the step — algorithms first, scheduling second.\n"
    );

    // ---- measured functional overlap -------------------------------------
    //
    // The rows above are *analytic*: `overlap` is a knob fed to the
    // projection. This section actually runs the functional trainer with
    // the bucketed nonblocking all-reduce and reports what fraction of ring
    // steps completed while backward compute was still executing — the
    // measured counterpart of that knob, on the shared-memory transport.
    println!("— measured functional overlap (4 ranks, bucketed nonblocking ring) —\n");
    let model = ModelConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 4,
        d_ff: 128,
        max_seq: 16,
        n_experts: 4,
        moe_every: 2,
        gate: GateKind::Top2,
        capacity_factor: 2.0,
        aux_weight: 0.01,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    };
    let mut t = Table::new(&["bucket", "measured overlap", "allreduce traffic"]);
    for &bucket_bytes in &[4usize << 10, 16 << 10, 64 << 10] {
        let report = Trainer::new(TrainConfig {
            model,
            nranks: 4,
            batch_per_rank: 2,
            seq: 16,
            steps: 4,
            bucket_bytes,
            overlap: true,
            ..TrainConfig::default()
        })
        .run();
        let traffic = report
            .comm_stats
            .map(|s| s.family(bagualu::comm::CommFamily::Allreduce).bytes)
            .unwrap_or(0);
        t.row(&[
            format!("{} KiB", bucket_bytes >> 10),
            format!("{:.0}%", report.overlap_fraction.unwrap_or(0.0) * 100.0),
            format_si(traffic as f64, "B"),
        ]);
    }
    t.print();
    println!(
        "\nMeasured overlap is the fraction of ring all-reduce steps already\n\
         complete when backward returns. Smaller buckets launch earlier and\n\
         hide more; the tail bucket is always exposed, so 100% is\n\
         unreachable by construction. Compare with the analytic sweep above.\n"
    );
}
