//! E9 — the headline: sustained mixed-precision performance at full
//! machine scale (37.44 million cores), per preset and precision.

use crate::table::Table;
use bagualu::hw::Precision;
use bagualu::metrics::{format_flops, format_si};
use bagualu::model::config::ModelConfig;
use bagualu::perfmodel::{project, PerfInput};

pub fn run() {
    println!("== E9: sustained performance on the full machine (96,000 nodes) ==\n");
    let mut t = Table::new(&[
        "preset",
        "precision",
        "step time",
        "tokens/s",
        "sustained",
        "of sustained peak",
    ]);
    for (name, cfg) in [
        ("1.93T", ModelConfig::bagualu_1_93t()),
        ("14.5T", ModelConfig::bagualu_14_5t()),
        ("174T", ModelConfig::bagualu_174t()),
    ] {
        for (pname, prec) in [("fp32", Precision::FP32), ("half", Precision::Half)] {
            let p = project(&PerfInput {
                precision: prec,
                ..PerfInput::sunway_full(cfg)
            });
            t.row(&[
                name.into(),
                pname.into(),
                format!("{:.2} s", p.step_time),
                format_si(p.tokens_per_sec, "tok/s"),
                format_flops(p.sustained_flops),
                format!("{:.1}%", 100.0 * p.efficiency),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: mixed precision sustains EFLOPS-order useful compute on the\n\
         brain-scale presets — the \"over 1 EFLOPS mixed precision\" headline of the\n\
         original system — while FP32 lands around 4x lower. Efficiency declines\n\
         from 1.93T to 174T as the (flat) gate projection grows with expert count.\n"
    );
}
