//! E27 — degrade, don't die: elastic goodput vs the restart baseline.
//!
//! Two recovery policies face the same crash schedule (rank 3 dies at step
//! 12 and again at step 18):
//!
//! * **restart** (the E22 policy) restores the full-width world from the
//!   last checkpoint after every crash — and so eats *both* crashes, two
//!   recovery pauses plus the re-executed steps;
//! * **elastic** shrinks to the survivors after the first crash and
//!   re-shards the full-width checkpoint across R−1 ranks. The second
//!   crash is scheduled for a rank id that no longer exists, so it never
//!   fires — the run has degraded *out of the blast radius*.
//!
//! Goodput is wall-clock relative to a fault-free, checkpoint-free
//! baseline delivering the same 24 training steps; the in-process asserts
//! are the CI gate (`elastic > restart`). A second section exercises the
//! other degradation path: a sustained slow rank is flagged by the online
//! straggler detector and its expert load is shed at a checkpoint
//! boundary, with the `__placement__` record staying consistent.
//!
//! Artifacts: `target/e27/goodput-table.txt` and `BENCH_goodput.json` at
//! the repo root (schema `bagualu-goodput/v1`).

use crate::table::Table;
use bagualu::checkpoint::read_placement;
use bagualu::comm::FaultPlan;
use bagualu::model::config::ModelConfig;
use bagualu::parallel::ExpertPlacement;
use bagualu::trainer::{FtConfig, TrainConfig, Trainer};
use std::time::Instant;

const TABLE_OUT: &str = "target/e27/goodput-table.txt";
const JSON_OUT: &str = "BENCH_goodput.json";

const STEPS: usize = 24;
const CKPT_EVERY: usize = 8;
/// The crashing rank: the highest id, so the elastic shrink retires
/// exactly the id the second crash is scheduled against.
const CRASH_RANK: usize = 3;

struct PolicyRow {
    policy: &'static str,
    restarts: usize,
    resizes: usize,
    lost_steps: usize,
    elapsed_s: f64,
    goodput: f64,
}

pub fn run() {
    println!("== E27: elastic goodput vs restart baseline ==\n");
    let cfg = TrainConfig {
        nranks: 4,
        steps: STEPS,
        model: ModelConfig {
            n_experts: 12,
            ..ModelConfig::tiny()
        },
        ..TrainConfig::default()
    };
    let dir = std::env::temp_dir().join(format!("bagualu-e27-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Fault-free, checkpoint-free baseline: the goodput denominator.
    let t0 = Instant::now();
    let base = Trainer::new(cfg).run();
    let base_s = t0.elapsed().as_secs_f64();
    assert!(base.final_loss().is_finite());
    println!(
        "baseline: {STEPS} steps in {base_s:.2}s ({:.0} tokens/s)\n",
        base.tokens_per_sec
    );

    let plan = || {
        FaultPlan::new(2700)
            .crash(CRASH_RANK, 12)
            .crash(CRASH_RANK, 18)
    };
    let mut rows: Vec<PolicyRow> = Vec::new();
    for (policy, elastic) in [("restart", false), ("elastic", true)] {
        let ft = FtConfig {
            plan: plan(),
            ckpt_every: CKPT_EVERY,
            max_restarts: 4,
            heartbeat_ms: 500,
            elastic,
            ..FtConfig::new(dir.join(policy))
        };
        let t0 = Instant::now();
        let r = Trainer::new(cfg).run_ft(&ft);
        let elapsed_s = t0.elapsed().as_secs_f64();
        assert!(r.loss_curve.iter().all(|l| l.is_finite()));
        if elastic {
            assert_eq!(r.restarts, 1, "elastic absorbs the first crash only");
            assert_eq!(r.resizes, 1, "one shrink to the survivors");
        } else {
            assert_eq!(r.restarts, 2, "restart policy eats both crashes");
            assert_eq!(r.resizes, 0);
        }
        rows.push(PolicyRow {
            policy,
            restarts: r.restarts,
            resizes: r.resizes,
            lost_steps: r.lost_steps,
            elapsed_s,
            goodput: base_s / elapsed_s,
        });
    }

    let mut t = Table::new(&[
        "policy",
        "restarts",
        "resizes",
        "lost steps",
        "elapsed",
        "goodput",
    ]);
    for r in &rows {
        t.row(&[
            r.policy.to_string(),
            format!("{}", r.restarts),
            format!("{}", r.resizes),
            format!("{}", r.lost_steps),
            format!("{:.2}s", r.elapsed_s),
            format!("{:.0}%", r.goodput * 100.0),
        ]);
    }
    t.print();

    let restart = rows.iter().find(|r| r.policy == "restart").unwrap();
    let elastic = rows.iter().find(|r| r.policy == "elastic").unwrap();
    // The CI gate: degrading out of the second crash must beat restoring
    // through it. Elastic does strictly less recovery (one pause vs two)
    // and strictly fewer re-executed steps, so this holds with margin.
    assert!(
        elastic.goodput > restart.goodput,
        "elastic goodput {:.3} must beat restart goodput {:.3}",
        elastic.goodput,
        restart.goodput
    );
    println!(
        "\ngate: elastic {:.0}% > restart {:.0}% goodput ✓",
        elastic.goodput * 100.0,
        restart.goodput * 100.0
    );

    // ---- Straggler migration: shed load off a sustained slow rank.
    println!("\n-- straggler migration --");
    let scfg = TrainConfig {
        nranks: 2,
        steps: 12,
        ..TrainConfig::default()
    };
    let sdir = dir.join("straggler");
    let sr = Trainer::new(scfg).run_ft(&FtConfig {
        plan: FaultPlan::new(2701).slow_rank(1, 0, 12, 2000),
        ckpt_every: 4,
        heartbeat_ms: 500,
        straggler_factor: Some(1.5),
        straggler_window: 2,
        ..FtConfig::new(&sdir)
    });
    assert_eq!(sr.migrations, 1, "the slow rank must be flagged and shed");
    let e = scfg.model.n_experts;
    let before = ExpertPlacement::RoundRobin.local_count(1, e, scfg.nranks);
    let after = sr.placement.local_count(1, e, scfg.nranks);
    assert!(
        after < before,
        "migration must shed expert load: victim still hosts {after}/{e}"
    );
    let meta = read_placement(sdir.join("step8").join("rank0.bglu"))
        .expect("read post-migration checkpoint")
        .expect("placement record present");
    assert_eq!(
        meta.placement, sr.placement,
        "checkpoint placement record must match the migrated layout"
    );
    println!(
        "slow rank 1 flagged → {} ({} experts -> {} of {e}), \
         post-migration checkpoint consistent ✓",
        sr.placement, before, after
    );

    // ---- Artifacts.
    let mut artifact = String::from("E27 goodput: elastic vs restart\n\n");
    artifact.push_str(&format!("baseline: {STEPS} steps in {base_s:.2}s\n\n"));
    artifact.push_str(&t.render());
    artifact.push_str(&format!(
        "\nstraggler migration: victim rank 1, {before} -> {after} of {e} experts\n"
    ));
    std::fs::create_dir_all("target/e27").expect("create target/e27");
    std::fs::write(TABLE_OUT, &artifact).expect("write goodput table");

    let mut json = String::from("{\n  \"schema\": \"bagualu-goodput/v1\",\n");
    json.push_str(&format!(
        "  \"baseline\": {{\"steps\": {STEPS}, \"elapsed_s\": {base_s:.4}}},\n"
    ));
    json.push_str("  \"policies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"restarts\": {}, \"resizes\": {}, \
             \"lost_steps\": {}, \"elapsed_s\": {:.4}, \"goodput\": {:.4}}}{}\n",
            r.policy,
            r.restarts,
            r.resizes,
            r.lost_steps,
            r.elapsed_s,
            r.goodput,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"straggler\": {{\"victim\": 1, \"migrations\": {}, \
         \"experts_before\": {before}, \"experts_after\": {after}}}\n",
        sr.migrations
    ));
    json.push_str("}\n");
    std::fs::write(JSON_OUT, json).expect("write BENCH_goodput.json");

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nwrote {TABLE_OUT} and {JSON_OUT}\n\n\
         Shape check: the restart policy pays two recovery pauses and\n\
         re-executes every step lost to both crashes; the elastic policy\n\
         pays one, then continues on 3 ranks — the second crash targets a\n\
         retired rank id and never fires. At BaGuaLu's scale (96,000 nodes)\n\
         a policy that keeps the surviving 95,999 busy between repairs is\n\
         the difference between goodput and idle time; shedding expert load\n\
         off flagged stragglers applies the same degrade-don't-die rule to\n\
         ranks that are merely slow instead of dead.\n"
    );
}
