//! E20 — training energy: power, energy per token, and what the
//! communication optimizations are worth in megawatt-hours.
//!
//! A 35 MW machine burns its idle floor whether the vector units are
//! computing or waiting on an all-to-all. This experiment converts the E6
//! step structure into joules per token across the optimization ladder.

use crate::table::Table;
use bagualu::hw::{PowerModel, Precision};
use bagualu::metrics::format_si;
use bagualu::model::config::ModelConfig;
use bagualu::perfmodel::{project, PerfInput, Projection};

fn util(p: &Projection) -> f64 {
    let b = p.breakdown;
    let compute = b.dense_compute + b.gate_compute + b.expert_compute;
    (compute / p.step_time).clamp(0.0, 1.0)
}

pub fn run() {
    println!("== E20: energy accounting, 14.5T preset, 96,000 nodes ==\n");
    let power = PowerModel::sunway();
    let nodes = 96_000;
    let mut t = Table::new(&[
        "configuration",
        "step time",
        "avg power (MW)",
        "J/token",
        "tokens per MWh",
    ]);
    let configs: [(&str, PerfInput); 4] = [
        (
            "naive collectives, fp32",
            PerfInput {
                precision: Precision::FP32,
                hierarchical_a2a: false,
                hierarchical_allreduce: false,
                ..PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
            },
        ),
        (
            "naive collectives, half",
            PerfInput {
                hierarchical_a2a: false,
                hierarchical_allreduce: false,
                ..PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
            },
        ),
        (
            "hierarchical, half",
            PerfInput::sunway_full(ModelConfig::bagualu_14_5t()),
        ),
        (
            "hierarchical + overlap, half",
            PerfInput {
                overlap: 1.0,
                ..PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
            },
        ),
    ];
    for (label, input) in configs {
        let p = project(&input);
        let u = util(&p);
        let joules_per_token = power.energy_per_token(nodes, p.step_time, u, p.global_tokens);
        let mwh_tokens = 3.6e9 / joules_per_token; // tokens per MWh
        t.row(&[
            label.into(),
            format!("{:.2} s", p.step_time),
            format!("{:.1}", power.machine_power(nodes, u) / 1e6),
            format!("{joules_per_token:.2}"),
            format_si(mwh_tokens, "tok"),
        ]);
    }
    t.print();
    println!(
        "\nShape check: the optimization ladder cuts energy per token ~10x end to\n\
         end. Note the power column barely moves — the machine burns its idle\n\
         floor regardless, so every second of communication stall is almost\n\
         pure energy waste. Faster is greener at this scale.\n"
    );
}
