//! E16 — all-reduce algorithm selection by message size.
//!
//! A training step carries reductions at two extremes: gigabytes of dense
//! gradients (bandwidth-bound) and 4-byte control flags — loss scalars,
//! overflow votes — on the latency floor. No single algorithm wins both;
//! this table shows where each of ring, recursive doubling, and the
//! hierarchical composition takes over on the 96,000-node topology.

use crate::table::Table;
use bagualu::hw::MachineConfig;
use bagualu::net::cost::CollectiveCost;

fn fmt(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.2} s")
    } else if t >= 1e-3 {
        format!("{:.2} ms", t * 1e3)
    } else {
        format!("{:.1} us", t * 1e6)
    }
}

pub fn run() {
    println!("== E16: all-reduce algorithm selection, 96,000 nodes ==\n");
    let cc = CollectiveCost::new(MachineConfig::new_generation_sunway());
    let n = 96_000;
    let mut t = Table::new(&[
        "payload",
        "flat ring",
        "recursive doubling",
        "hierarchical",
        "winner",
    ]);
    for &(bytes, label) in &[
        (4usize, "4 B (flag)"),
        (4 * 1024, "4 KiB"),
        (1 << 20, "1 MiB"),
        (64 << 20, "64 MiB"),
        (4usize << 30, "4 GiB (grads)"),
    ] {
        let ring = cc.allreduce_ring(n, bytes);
        let rd = cc.allreduce_recursive_doubling(n, bytes);
        let hier = cc.allreduce_hierarchical(n, bytes);
        let winner = if rd <= ring && rd <= hier {
            "recursive doubling"
        } else if hier <= ring {
            "hierarchical"
        } else {
            "ring"
        };
        t.row(&[label.into(), fmt(ring), fmt(rd), fmt(hier), winner.into()]);
    }
    t.print();
    println!(
        "\nShape check: recursive doubling owns the latency floor (Θ(log n)·α ≈\n\
         80 µs vs the ring's 2n·α ≈ 0.9 s), the hierarchical composition owns the\n\
         bandwidth regime. The trainer uses exactly this split: doubling for\n\
         control scalars, hierarchical for gradients.\n"
    );
}
