//! E29 — auto-tuning: modeled-vs-measured ranking fidelity and the
//! tuned-vs-default win.
//!
//! `bagualu-tune` ranks the communication knob space with the α–β cost
//! model, then validates its top picks with short measured runs of the
//! real trainer. This experiment grades that loop on a 4-rank world:
//!
//! 1. **Search + rank**: enumerate the standard knob grid over a tiny
//!    4-rank base config and rank every candidate by modeled step time at
//!    a 4096-node target scale.
//! 2. **Measure**: time the modeled top-K plus the all-defaults baseline
//!    on the functional trainer; the winner is the *measured* argmin.
//! 3. **Fidelity**: pairwise concordance between the modeled and measured
//!    orderings of the measured set — how often the model gets a
//!    strictly-ordered pair right (reported, not gated: timing noise on a
//!    shared CI box is real).
//! 4. **Gates** (the CI teeth): the tuned config's *modeled* step time is
//!    no worse than default's, its *measured* step time is no worse than
//!    default's on the 4-rank world, and the winning TOML round-trips to
//!    the exact same `RunConfig` — the reproducibility contract behind
//!    `bagualu train --config`.
//!
//! Artifacts: `target/e29/tuning-table.txt` and `BENCH_tuning.json` at
//! the repo root (schema `bagualu-tuning/v1`).

use crate::table::Table;
use bagualu::runconfig::RunConfig;
use bagualu_tune::{tune, CostEnv, SearchSpace, TuneOptions};

const TABLE_OUT: &str = "target/e29/tuning-table.txt";
const JSON_OUT: &str = "BENCH_tuning.json";

const RANKS: usize = 4;
const SCALE_NODES: usize = 4096;
const TOP_K: usize = 3;
const MEASURE_STEPS: usize = 6;

fn base_config() -> RunConfig {
    let mut rc = RunConfig::default();
    rc.train.ranks = RANKS;
    rc.train.batch = 2;
    rc.train.seq = 8;
    rc
}

pub fn run() {
    println!("== E29: cost-model-driven auto-tuning ==\n");

    let base = base_config();
    let space = SearchSpace::default();
    let env = CostEnv::sunway(SCALE_NODES);
    let opts = TuneOptions {
        scale_nodes: SCALE_NODES,
        top_k: TOP_K,
        measure_steps: MEASURE_STEPS,
        measure: true,
    };
    println!(
        "search space: {} grid points over wire dtype / a2a topology / placement+bias \
         / overlap / bucket size",
        space.grid_points()
    );
    println!(
        "base: tiny preset, {} ranks; modeled at {} nodes; measuring top-{} + default \
         with {}-step runs\n",
        RANKS, SCALE_NODES, TOP_K, MEASURE_STEPS
    );

    let report = tune(&base, &space, &env, &opts).expect("tuning the default base succeeds");

    // ---- Full modeled ranking (the tuner's own table).
    println!("-- modeled ranking (measured column for the validated set) --");
    print!("{}", report.table());

    // ---- Ranking fidelity over the measured set.
    let measured: Vec<(usize, f64, f64)> = report
        .scored
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.measured_step_s.map(|m| (i, c.cost.step_s, m)))
        .collect();
    let mut ordered_pairs = 0usize;
    let mut concordant = 0usize;
    for (ai, a) in measured.iter().enumerate() {
        for b in &measured[ai + 1..] {
            if a.1 == b.1 {
                continue; // modeled tie: the model makes no claim
            }
            ordered_pairs += 1;
            if (a.1 < b.1) == (a.2 < b.2) {
                concordant += 1;
            }
        }
    }
    let concordance = if ordered_pairs > 0 {
        concordant as f64 / ordered_pairs as f64
    } else {
        1.0
    };
    println!(
        "\nranking fidelity: {concordant}/{ordered_pairs} strictly-modeled pairs ordered \
         the same way by measurement ({:.0}%)",
        concordance * 100.0
    );

    // ---- Gates.
    let winner = report.winner();
    let default = report.default_candidate();
    let w_measured = winner.measured_step_s.expect("winner was measured");
    let d_measured = default.measured_step_s.expect("default was measured");
    assert!(
        winner.cost.step_s <= default.cost.step_s,
        "tuned config models worse than default: {} vs {} s",
        winner.cost.step_s,
        default.cost.step_s
    );
    assert!(
        w_measured <= d_measured,
        "tuned config measured worse than default on {RANKS} ranks: {w_measured} vs \
         {d_measured} s"
    );
    let replayed =
        RunConfig::from_toml(&report.winning_toml()).expect("winning TOML must parse back");
    assert_eq!(
        replayed, winner.rc,
        "winning TOML did not round-trip to the same RunConfig"
    );
    println!(
        "\ngates: tuned modeled {:.3}ms <= default {:.3}ms; tuned measured {:.3}ms <= \
         default {:.3}ms ({} ranks); winning TOML round-trips ✓",
        winner.cost.step_s * 1e3,
        default.cost.step_s * 1e3,
        w_measured * 1e3,
        d_measured * 1e3,
        RANKS
    );
    println!("winner: {}", winner.name);

    // ---- Artifacts.
    let mut summary = Table::new(&["role", "candidate", "modeled", "measured", "roofl_x"]);
    for (role, c) in [("winner", winner), ("default", default)] {
        summary.row(&[
            role.into(),
            c.name.clone(),
            format!("{:.3}ms", c.cost.step_s * 1e3),
            format!("{:.3}ms", c.measured_step_s.unwrap() * 1e3),
            format!("{:.2}", c.cost.roofline_distance),
        ]);
    }
    println!();
    summary.print();

    let mut artifact = String::from("E29 tuning: cost-model search + measured validation\n\n");
    artifact.push_str(&format!(
        "base: tiny preset, {RANKS} ranks; modeled at {SCALE_NODES} nodes; \
         top-{TOP_K} + default measured with {MEASURE_STEPS}-step runs\n\n"
    ));
    artifact.push_str(&report.table());
    artifact.push_str(&format!(
        "\nranking fidelity: {concordant}/{ordered_pairs} pairs concordant \
         ({:.0}%)\n\nwinning config:\n{}",
        concordance * 100.0,
        report.winning_toml()
    ));
    std::fs::create_dir_all("target/e29").expect("create target/e29");
    std::fs::write(TABLE_OUT, &artifact).expect("write tuning table");

    let mut json = String::from("{\n  \"schema\": \"bagualu-tuning/v1\",\n");
    json.push_str(&format!(
        "  \"search\": {{\"grid_points\": {}, \"candidates\": {}, \"scale_nodes\": \
         {SCALE_NODES}, \"ranks\": {RANKS}, \"top_k\": {TOP_K}, \"measure_steps\": \
         {MEASURE_STEPS}}},\n",
        space.grid_points(),
        report.scored.len()
    ));
    json.push_str("  \"measured\": [\n");
    for (i, &(idx, modeled, meas)) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"modeled_ms\": {:.4}, \"measured_ms\": {:.4}}}{}\n",
            report.scored[idx].name,
            modeled * 1e3,
            meas * 1e3,
            if i + 1 == measured.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"concordance\": {{\"pairs\": {ordered_pairs}, \"concordant\": {concordant}, \
         \"fraction\": {concordance:.4}}},\n"
    ));
    json.push_str(&format!(
        "  \"winner\": {{\"name\": \"{}\", \"modeled_ms\": {:.4}, \"measured_ms\": {:.4}, \
         \"roofline_distance\": {:.4}}},\n",
        winner.name,
        winner.cost.step_s * 1e3,
        w_measured * 1e3,
        winner.cost.roofline_distance
    ));
    json.push_str(&format!(
        "  \"default\": {{\"modeled_ms\": {:.4}, \"measured_ms\": {:.4}}},\n",
        default.cost.step_s * 1e3,
        d_measured * 1e3
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"tuned_modeled_no_worse\": true, \"tuned_measured_no_worse\": \
         true, \"toml_round_trip\": true, \"strict_measured_win\": {}}}\n}}\n",
        report.winner_index != report.default_index && w_measured < d_measured
    ));
    std::fs::write(JSON_OUT, json).expect("write BENCH_tuning.json");

    println!(
        "\nwrote {TABLE_OUT} and {JSON_OUT}\n\n\
         Shape check: at 4096 modeled nodes the tiny model's per-pair a2a\n\
         payloads are latency-dominated, so the model sends the 16-bit\n\
         hierarchical candidates to the top. The measured side is the honest\n\
         split: on a 4-rank in-process world the knob effects sit inside\n\
         scheduler noise, so the winner is chosen by *measured* argmin over\n\
         the top-K plus the default — by construction it is never measurably\n\
         worse than the default, and when a candidate's real win clears the\n\
         noise it takes the crown (strict_measured_win in the JSON). The\n\
         winner's TOML is the product: `bagualu train --config` on it\n\
         reproduces the tuned run bit for bit, because flags and file build\n\
         the same RunConfig.\n"
    );
}
