//! E12 — capacity-factor sweep: drops vs balance vs effective step time.
//!
//! Capacity trades quality (dropped tokens bypass their experts) against
//! speed (per-expert batch is bounded, so the slowest expert is bounded).
//! Swept under Zipf(1.0)-skewed tokens for top-2 routing; the step-time
//! proxy is max-load/capacity-balanced-load.

use crate::table::Table;
use bagualu::model::embedding::Embedding;
use bagualu::model::moe::{Gate, GateKind};
use bagualu::tensor::rng::{Rng, Zipf};

pub fn run() {
    println!("== E12: capacity-factor sweep (top-2, 64 experts, zipf-1.0 tokens) ==\n");
    const D: usize = 32;
    const EXPERTS: usize = 64;
    const VOCAB: usize = 512;
    const TOKENS: usize = 4096;

    let mut t = Table::new(&[
        "capacity factor",
        "capacity",
        "drop rate",
        "imbalance",
        "rel. step time",
    ]);
    for &cf in &[1.0f32, 1.25, 1.5, 2.0, 4.0] {
        let mut rng = Rng::seed_from(1212);
        let mut emb = Embedding::new("emb", VOCAB, D, &mut rng);
        let mut gate = Gate::new("g", D, EXPERTS, GateKind::Top2, cf, 0.01, &mut rng);
        let zipf = Zipf::new(VOCAB, 1.0);
        let mut data_rng = Rng::seed_from(1213);
        let ids: Vec<usize> = (0..TOKENS).map(|_| zipf.sample(&mut data_rng)).collect();
        let x = emb.forward(&ids);
        let r = gate.forward(&x);
        // Step time follows the most loaded expert; normalize by the
        // perfectly balanced load (n·k/E).
        let balanced = TOKENS as f64 * 2.0 / EXPERTS as f64;
        let max_load = *r.load.iter().max().unwrap() as f64;
        t.row(&[
            format!("{cf}"),
            format!("{}", r.capacity),
            format!("{:.1}%", r.drop_rate() * 100.0),
            format!("{:.2}", r.imbalance()),
            format!("{:.2}x", max_load / balanced),
        ]);
    }
    t.print();
    println!(
        "\nShape check: small capacity ⇒ bounded step time but heavy drops under\n\
         skew; large capacity ⇒ no drops but the hottest expert dictates a step\n\
         several times the balanced time. The production sweet spot (~1.25, as in\n\
         GShard-lineage systems) sits at the knee.\n"
    );
}
