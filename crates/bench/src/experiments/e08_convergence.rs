//! E8 — convergence: MoE vs FLOPs-matched dense model.
//!
//! Both models see identical data and activate the same FLOPs per token
//! (the MoE activates k=2 of its experts; the dense model's FFN is the same
//! width as one expert). The MoE model carries 4× the FFN parameters — the
//! scaling thesis is that the extra capacity buys better loss at equal
//! compute.

use crate::table::Table;
use bagualu::data::TokenDistribution;
use bagualu::model::config::ModelConfig;
use bagualu::trainer::{TrainConfig, TrainReport, Trainer};

fn train(model: ModelConfig, steps: usize) -> TrainReport {
    Trainer::new(TrainConfig {
        model,
        nranks: 2,
        batch_per_rank: 4,
        seq: 8,
        steps,
        lr: 1e-2,
        seed: 21,
        data: TokenDistribution::Zipf(0.8),
        ..Default::default()
    })
    .run()
}

pub fn run() {
    println!("== E8: convergence, MoE vs FLOPs-matched dense (300 steps) ==\n");
    let steps = 300;
    let moe = train(ModelConfig::tiny(), steps);
    let dense = train(ModelConfig::tiny_dense(), steps);

    let mut t = Table::new(&["step", "moe loss", "dense loss"]);
    for s in (0..steps).step_by(25).chain([steps - 1]) {
        t.row(&[
            format!("{s}"),
            format!("{:.4}", moe.loss_curve[s]),
            format!("{:.4}", dense.loss_curve[s]),
        ]);
    }
    t.print();

    let moe_params = ModelConfig::tiny().count_params();
    let dense_params = ModelConfig::tiny_dense().count_params();
    println!(
        "\nparams: moe = {moe_params}, dense = {dense_params} \
         ({:.1}x more at equal per-token FLOPs)",
        moe_params as f64 / dense_params as f64
    );
    println!(
        "final: moe = {:.4}, dense = {:.4}\n\
         Shape check: the MoE model matches or beats the dense model at equal\n\
         activated compute — the premise that makes brain-scale parameter counts\n\
         worth training.\n",
        moe.final_loss(),
        dense.final_loss()
    );
}
