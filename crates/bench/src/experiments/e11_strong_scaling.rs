//! E11 — strong scaling: fixed global batch, growing machine.
//!
//! The 1.93T preset with a fixed 16M-token global batch. As nodes grow,
//! per-node work shrinks while collective latencies do not — efficiency
//! rolls off exactly where the per-node batch stops amortizing the
//! all-to-all and all-reduce latency floors.

use crate::table::Table;
use bagualu::metrics::format_si;
use bagualu::model::config::ModelConfig;
use bagualu::perfmodel::{project, PerfInput};

pub fn run() {
    println!("== E11: strong scaling, 1.93T preset, 16M-token global batch ==\n");
    let global_tokens: usize = 16 * 1024 * 1024;
    let mut t = Table::new(&[
        "nodes",
        "tokens/node",
        "step time",
        "tokens/s",
        "speedup",
        "efficiency",
    ]);
    let mut base: Option<(usize, f64)> = None;
    for &nodes in &[2048usize, 8192, 24576, 49152, 96_000] {
        let input = PerfInput {
            tokens_per_node: (global_tokens / nodes).max(1),
            ..PerfInput::sunway_nodes(ModelConfig::bagualu_1_93t(), nodes)
        };
        let p = project(&input);
        let (n0, t0) = *base.get_or_insert((nodes, p.step_time));
        let speedup = t0 / p.step_time;
        let ideal = nodes as f64 / n0 as f64;
        t.row(&[
            format!("{nodes}"),
            format!("{}", input.tokens_per_node),
            format!("{:.3} s", p.step_time),
            format_si(p.tokens_per_sec, "tok/s"),
            format!("{speedup:.2}x"),
            format!("{:.1}%", 100.0 * speedup / ideal),
        ]);
    }
    t.print();
    println!(
        "\nShape check: near-ideal speedup while per-node batch is large, rolling\n\
         off as latency floors (α terms of the collectives) stop amortizing — the\n\
         classic strong-scaling knee.\n"
    );
}
