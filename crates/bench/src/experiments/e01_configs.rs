//! E1 — machine and model configuration tables, including the exact
//! parameter counts of the brain-scale presets.

use crate::table::Table;
use bagualu::hw::{MachineConfig, Precision};
use bagualu::metrics::{format_flops, format_params, format_si};
use bagualu::model::config::ModelConfig;

pub fn run() {
    println!("== E1: machine configuration (New Generation Sunway model) ==\n");
    let m = MachineConfig::new_generation_sunway();
    let mut t = Table::new(&["property", "value"]);
    t.row(&["nodes".into(), format!("{}", m.nodes)]);
    t.row(&["supernode size".into(), format!("{}", m.supernode_size)]);
    t.row(&["supernodes".into(), format!("{}", m.supernodes())]);
    t.row(&[
        "core groups/node".into(),
        format!("{}", m.processor.core_groups),
    ]);
    t.row(&["cores/node".into(), format!("{}", m.processor.cores())]);
    t.row(&["total cores".into(), format!("{}", m.total_cores())]);
    t.row(&["peak FP32".into(), format_flops(m.peak(Precision::FP32))]);
    t.row(&[
        "peak FP16/BF16".into(),
        format_flops(m.peak(Precision::Half)),
    ]);
    t.row(&[
        "memory/node".into(),
        format!("{} GiB", m.processor.mem_capacity >> 30),
    ]);
    t.row(&[
        "intra-supernode bw/node".into(),
        format_si(m.network.intra_bw, "B/s"),
    ]);
    t.row(&[
        "inter-supernode bw/node".into(),
        format_si(m.network.inter_bw, "B/s"),
    ]);
    t.print();

    println!("\n== E1: model presets and parameter counts ==\n");
    let mut t = Table::new(&[
        "preset",
        "d_model",
        "layers",
        "moe blocks",
        "experts",
        "total params",
        "dense",
        "experts(params)",
    ]);
    for (name, cfg) in [
        ("1.93T", ModelConfig::bagualu_1_93t()),
        ("14.5T", ModelConfig::bagualu_14_5t()),
        ("174T (brain scale)", ModelConfig::bagualu_174t()),
    ] {
        t.row(&[
            name.into(),
            format!("{}", cfg.d_model),
            format!("{}", cfg.n_layers),
            format!("{}", cfg.n_moe_blocks()),
            format!("{}", cfg.n_experts),
            format_params(cfg.count_params()),
            format_params(cfg.dense_params()),
            format_params(cfg.expert_params()),
        ]);
    }
    t.print();
    println!(
        "\nNote: presets are reconstructions hitting the published parameter counts\n\
         (the original hyperparameters are not available to this reproduction).\n"
    );
}
