//! E19 — kernel-level validation of the GEMM efficiency constant.
//!
//! The roofline projections assume a tuned GEMM sustains ~60% of peak on a
//! core group. This experiment derives that number from a kernel-level
//! simulation (LDM tiling, DMA double buffering, per-panel overheads,
//! register communication across the CPE mesh) — the model of what the
//! hand-written SWDNN kernels do — and ablates the two design levers that
//! make hand tuning matter: tile shape and mesh panel sharing.

use crate::table::Table;
use bagualu::hw::cpesim::{best_tiling, simulate_gemm, Tiling};
use bagualu::hw::ProcessorSpec;

pub fn run() {
    let cg = ProcessorSpec::sw26010_pro().cg;

    println!("== E19a: best-found tiling per GEMM shape (one core group) ==\n");
    let mut t = Table::new(&[
        "gemm (m=k=n)",
        "precision",
        "best tile (mc,nc,kc)",
        "efficiency",
        "bound by",
    ]);
    for &dim in &[256usize, 1024, 4096] {
        for (pname, half) in [("fp32", false), ("half", true)] {
            let (tile, sim) = best_tiling(&cg, dim, dim, dim, half, true);
            t.row(&[
                format!("{dim}"),
                pname.into(),
                format!("({}, {}, {})", tile.mc, tile.nc, tile.kc),
                format!("{:.1}%", sim.efficiency * 100.0),
                if sim.dma_bound {
                    "DMA".into()
                } else {
                    "compute".into()
                },
            ]);
        }
    }
    t.print();

    println!("\n== E19b: register communication ablation (4096³) ==\n");
    let mut t = Table::new(&["precision", "private DMA", "mesh panel sharing", "gain"]);
    for (pname, half) in [("fp32", false), ("half", true)] {
        let (_, private) = best_tiling(&cg, 4096, 4096, 4096, half, false);
        let (_, shared) = best_tiling(&cg, 4096, 4096, 4096, half, true);
        t.row(&[
            pname.into(),
            format!("{:.1}%", private.efficiency * 100.0),
            format!("{:.1}%", shared.efficiency * 100.0),
            format!("{:.2}x", shared.efficiency / private.efficiency),
        ]);
    }
    t.print();

    println!("\n== E19c: efficiency sensitivity to tile shape (4096³ fp32, sharing on) ==\n");
    let mut t = Table::new(&["tile (mc,nc,kc)", "LDM use", "efficiency", "bound by"]);
    for tile in [
        Tiling {
            mc: 16,
            nc: 16,
            kc: 32,
        },
        Tiling {
            mc: 32,
            nc: 32,
            kc: 64,
        },
        Tiling {
            mc: 64,
            nc: 64,
            kc: 128,
        },
        Tiling {
            mc: 96,
            nc: 96,
            kc: 64,
        },
        Tiling {
            mc: 128,
            nc: 128,
            kc: 32,
        },
    ] {
        match simulate_gemm(&cg, 4096, 4096, 4096, tile, false, true) {
            Some(sim) => {
                t.row(&[
                    format!("({}, {}, {})", tile.mc, tile.nc, tile.kc),
                    format!("{:.0}%", 100.0 * sim.ldm_bytes as f64 / cg.ldm_bytes as f64),
                    format!("{:.1}%", sim.efficiency * 100.0),
                    if sim.dma_bound {
                        "DMA".into()
                    } else {
                        "compute".into()
                    },
                ]);
            }
            None => {
                t.row(&[
                    format!("({}, {}, {})", tile.mc, tile.nc, tile.kc),
                    "> LDM".into(),
                    "—".into(),
                    "—".into(),
                ]);
            }
        }
    }
    t.print();
    println!(
        "\nShape check: with register communication and a tuned tiling, large\n\
         GEMMs land in the 60–80% band — justifying the roofline's\n\
         gemm_efficiency = 0.6. Without mesh sharing, half precision starves on\n\
         DMA (the vector units outrun private-DMA bandwidth 4×), which is why\n\
         the SW26010's register-communication fabric is load-bearing for the\n\
         EFLOPS headline, not an optimization footnote.\n"
    );
}
