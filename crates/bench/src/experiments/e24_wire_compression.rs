//! E24 — half-precision wire compression for gradient sync and MoE a2a.
//!
//! BaGuaLu reaches brain scale by spending as few bytes as possible on the
//! interconnect; this experiment quantifies what the 16-bit wire formats
//! (`TrainConfig::wire`, CLI `--wire-dtype`) buy and what they cost:
//!
//! 1. **wire bytes** — the same 4-rank training run under `f32`/`bf16`/
//!    `f16` wires; gradient-allreduce + a2a bytes from `CommStats`,
//!    cross-checked against the per-dtype `comm.wire.*` trace counters.
//!    The run *fails* if a 16-bit wire does not cut those bytes by ≥45%
//!    (CI runs this experiment as a regression gate).
//! 2. **modeled step comm time** — α–β cost-model projection of one step's
//!    hierarchical allreduce + dispatch/combine a2a at 256 → 96,000 nodes
//!    for 4- vs 2-byte elements. Compression halves the β term only, so
//!    the win is largest where bandwidth dominates (the dense gradient
//!    volume) and fades where latency does (tiny per-pair a2a payloads at
//!    full machine scale — exactly the regime the hierarchical a2a exists
//!    for).
//! 3. **measured ShmComm step time** — functional-trainer wall time at
//!    2–64 ranks for both wires. Threads share memory, so "the wire" is a
//!    memcpy: moving half the bytes competes against paying the pack/
//!    unpack conversions, and this table reports that tradeoff honestly.
//! 4. **convergence** — eval-loss delta vs the f32 wire after the same
//!    number of steps, including the FP16-params + FP16-wire corner where
//!    loss-scaled gradients ride a 65504-max-finite format. The bf16 wire
//!    must stay within 1% of the f32 final eval loss.

use crate::table::Table;
use bagualu::comm::{CommFamily, WireDType};
use bagualu::hw::MachineConfig;
use bagualu::metrics::format_si;
use bagualu::model::config::ModelConfig;
use bagualu::model::moe::GateKind;
use bagualu::net::cost::CollectiveCost;
use bagualu::tensor::DType;
use bagualu::trace::names;
use bagualu::trainer::{TrainConfig, TrainReport, Trainer};

const TABLE_OUT: &str = "target/e24/wire-table.txt";

/// A small-but-real MoE model: d_model large enough that token rows (not
/// u32 headers) dominate the a2a, experts divisible by every rank count.
fn model(n_experts: usize) -> ModelConfig {
    ModelConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        max_seq: 8,
        n_experts,
        moe_every: 2,
        gate: GateKind::Top2,
        capacity_factor: 2.0,
        aux_weight: 0.01,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    }
}

fn run_traced(wire: WireDType) -> TrainReport {
    let cfg = TrainConfig {
        model: model(8),
        nranks: 4,
        batch_per_rank: 2,
        seq: 8,
        steps: 6,
        overlap: true,
        bucket_bytes: 8 << 10,
        trace: true,
        wire,
        ..TrainConfig::default()
    };
    Trainer::new(cfg).run()
}

/// Gradient-allreduce + a2a bytes — the traffic the wire knob compresses.
fn comm_bytes(r: &TrainReport) -> u64 {
    let stats = r.comm_stats.as_ref().expect("ShmComm collects stats");
    stats.family(CommFamily::Allreduce).bytes + stats.family(CommFamily::Alltoall).bytes
}

pub fn run() {
    println!("== E24: half-precision wire compression ==\n");
    let mut artifact = String::new();

    // ---- 1. Wire bytes, CommStats vs trace counters.
    println!("-- wire bytes (4 ranks, 6 steps, allreduce + a2a families) --");
    let mut t = Table::new(&[
        "wire",
        "allreduce+a2a",
        "vs f32",
        "fp32 ctr",
        "16-bit ctr",
        "u32 ctr",
        "total==stats",
    ]);
    let baseline = run_traced(WireDType::F32);
    let base_bytes = comm_bytes(&baseline);
    for wire in [WireDType::F32, WireDType::BF16, WireDType::F16] {
        let r = if wire == WireDType::F32 {
            baseline.clone()
        } else {
            run_traced(wire)
        };
        let bytes = comm_bytes(&r);
        let stats = r.comm_stats.as_ref().unwrap();
        let trace = r.trace.as_ref().expect("trace requested");
        // The per-dtype wire counters slice the same sent bytes as the
        // per-family counters: their sum must equal the transport total.
        let by_dtype: u64 = [
            names::WIRE_F32_BYTES,
            names::WIRE_F16_BYTES,
            names::WIRE_BF16_BYTES,
            names::WIRE_U64_BYTES,
            names::WIRE_U32_BYTES,
        ]
        .iter()
        .map(|n| trace.counter_total(n))
        .sum();
        assert_eq!(
            by_dtype, stats.total_bytes,
            "{wire}: per-dtype trace counters must cover every sent byte"
        );
        let half_ctr = trace.counter_total(names::WIRE_F16_BYTES)
            + trace.counter_total(names::WIRE_BF16_BYTES);
        if wire != WireDType::F32 {
            assert!(half_ctr > 0, "{wire}: compressed traffic must be counted");
            let cut = 1.0 - bytes as f64 / base_bytes as f64;
            assert!(
                cut >= 0.45,
                "{wire} wire must cut allreduce+a2a bytes by >=45%, got {:.1}%",
                cut * 100.0
            );
        }
        t.row(&[
            wire.to_string(),
            format_si(bytes as f64, "B"),
            format!("-{:.1}%", (1.0 - bytes as f64 / base_bytes as f64) * 100.0),
            format_si(trace.counter_total(names::WIRE_F32_BYTES) as f64, "B"),
            format_si(half_ctr as f64, "B"),
            format_si(trace.counter_total(names::WIRE_U32_BYTES) as f64, "B"),
            "yes".into(),
        ]);
    }
    t.print();
    artifact.push_str("wire bytes (4 ranks, allreduce + a2a families)\n");
    artifact.push_str(&t.render());
    println!(
        "\nControl-path scalars (metric/overflow reductions) stay fp32 and the\n\
         dispatch headers travel as u32, so the cut lands just under the 50%\n\
         data-byte ceiling. CommStats and the comm.wire.* counters agree on\n\
         every byte.\n"
    );

    // ---- 2. Modeled step comm time from the α–β cost model.
    println!("-- modeled step comm time (14.5T preset, hierarchical collectives) --");
    let cfg = ModelConfig::bagualu_14_5t();
    let dense = cfg.dense_params() as usize;
    let tokens_per_node = 2048usize;
    let mut t = Table::new(&[
        "nodes",
        "f32 allreduce",
        "bf16 allreduce",
        "f32 a2a",
        "bf16 a2a",
        "step speedup",
    ]);
    for nodes in [256usize, 1024, 6144, 24_576, 96_000] {
        let cc = CollectiveCost::new(MachineConfig::sunway_subset(nodes));
        // Top-2 routing: every token row crosses the a2a twice (dispatch +
        // combine), spread over all peers.
        let per_pair = |elem: usize| tokens_per_node * 2 * cfg.d_model * elem / nodes;
        let ar = |elem: usize| cc.allreduce_hierarchical(nodes, dense * elem);
        let a2a = |elem: usize| 2.0 * cc.alltoall_hierarchical(nodes, per_pair(elem));
        let speedup = (ar(4) + a2a(4)) / (ar(2) + a2a(2));
        t.row(&[
            format!("{nodes}"),
            format!("{:.3}s", ar(4)),
            format!("{:.3}s", ar(2)),
            format!("{:.3}s", a2a(4)),
            format!("{:.3}s", a2a(2)),
            format!("{speedup:.2}x"),
        ]);
        assert!(
            speedup > 1.0 && speedup <= 2.0 + 1e-9,
            "compression halves beta only: speedup {speedup}"
        );
    }
    t.print();
    artifact.push_str("\nmodeled step comm time (14.5T preset)\n");
    artifact.push_str(&t.render());
    println!(
        "\nThe dense gradient allreduce is bandwidth-bound at every scale, so\n\
         its time halves outright; the per-pair a2a payload shrinks as 1/nodes\n\
         until latency (α) dominates and compression stops mattering — the\n\
         two optimizations (hierarchical a2a for α, 16-bit wire for β) are\n\
         complementary, not redundant.\n"
    );

    // ---- 3. Measured ShmComm step time at 2–64 ranks.
    println!("-- measured functional step time (ShmComm threads, 64 experts) --");
    let mut t = Table::new(&["ranks", "f32 tok/s", "bf16 tok/s", "bf16/f32"]);
    for nranks in [2usize, 4, 8, 16, 32, 64] {
        let run_one = |wire| {
            let cfg = TrainConfig {
                model: model(64),
                nranks,
                batch_per_rank: 1,
                seq: 8,
                steps: 4,
                overlap: true,
                bucket_bytes: 8 << 10,
                wire,
                ..TrainConfig::default()
            };
            Trainer::new(cfg).run().tokens_per_sec
        };
        let f32_tps = run_one(WireDType::F32);
        let bf16_tps = run_one(WireDType::BF16);
        t.row(&[
            format!("{nranks}"),
            format_si(f32_tps, "tok/s"),
            format_si(bf16_tps, "tok/s"),
            format!("{:.2}x", bf16_tps / f32_tps),
        ]);
    }
    t.print();
    artifact.push_str("\nmeasured functional step time (ShmComm)\n");
    artifact.push_str(&t.render());
    println!(
        "\nIn shared memory the \"wire\" is a memcpy, so halving bytes competes\n\
         with paying the pack/unpack conversions — expect ratios near 1.0\n\
         here. The bytes the modeled network charges for (section 2) are\n\
         where the 2x lives.\n"
    );

    // ---- 4. Convergence: eval-loss delta vs the f32 wire. The run stops
    // while the eval loss is still O(1): at the synthetic task's
    // convergence floor (~1e-2 after 60 steps) per-hop rounding jitters
    // the trajectory by more than the loss itself, and a relative bound
    // stops measuring the wire format and starts measuring the floor.
    println!("-- convergence (4 ranks, 16 steps, eval every 8) --");
    let run_conv = |dtype: DType, wire: WireDType| {
        let cfg = TrainConfig {
            model: model(8),
            nranks: 4,
            batch_per_rank: 2,
            seq: 8,
            steps: 16,
            lr: 1e-2,
            dtype,
            eval_every: Some(8),
            wire,
            ..TrainConfig::default()
        };
        Trainer::new(cfg).run()
    };
    let exact = run_conv(DType::F32, WireDType::F32);
    let exact_eval = exact.eval_curve.last().unwrap().1;
    let mut t = Table::new(&["params", "wire", "final eval loss", "delta", "skipped"]);
    for (dtype, wire) in [
        (DType::F32, WireDType::F32),
        (DType::F32, WireDType::BF16),
        (DType::F32, WireDType::F16),
        (DType::F16, WireDType::F32),
        (DType::F16, WireDType::F16),
    ] {
        let r = if (dtype, wire) == (DType::F32, WireDType::F32) {
            exact.clone()
        } else {
            run_conv(dtype, wire)
        };
        let eval = r.eval_curve.last().unwrap().1;
        let delta = (eval - exact_eval) / exact_eval;
        if dtype == DType::F32 && wire == WireDType::BF16 {
            assert!(
                delta.abs() < 0.01,
                "bf16 wire must stay within 1% of f32 eval loss: {exact_eval} vs {eval}"
            );
        }
        assert!(eval.is_finite(), "{dtype}/{wire} diverged");
        t.row(&[
            dtype.to_string(),
            wire.to_string(),
            format!("{eval:.4}"),
            format!("{:+.2}%", delta * 100.0),
            format!("{}", r.skipped_steps),
        ]);
    }
    t.print();
    artifact.push_str("\nconvergence (4 ranks, 16 steps)\n");
    artifact.push_str(&t.render());
    println!(
        "\nReductions accumulate in f32 and each value is rounded only once\n\
         per hop, so the rounding noise stays far below gradient noise. The\n\
         fp16-params rows exercise the LossScaler: scaled gradients must\n\
         survive FP16's 65504 max-finite on the wire. Compare the two fp16\n\
         rows against each other — their gap is the wire's contribution,\n\
         while the gap to fp32 is the cost of fp16 parameters themselves\n\
         (the scaler's skipped warm-up steps mean fewer updates).\n"
    );

    std::fs::create_dir_all("target/e24").expect("create target/e24");
    std::fs::write(TABLE_OUT, &artifact).expect("write wire table");
    println!("wrote {TABLE_OUT}");
}
