//! One module per experiment (see DESIGN.md's experiment index).

pub mod e01_configs;
pub mod e02_weak_scaling;
pub mod e03_alltoall;
pub mod e04_load_balance;
pub mod e05_precision;
pub mod e06_breakdown;
pub mod e07_memory;
pub mod e08_convergence;
pub mod e09_headline;
pub mod e10_checkpoint;
pub mod e11_strong_scaling;
pub mod e12_capacity;
pub mod e13_simnet;
pub mod e14_overlap;
pub mod e15_placement;
pub mod e16_allreduce;
pub mod e17_multimodal;
pub mod e18_two_level_gate;
pub mod e19_kernel_tiling;
pub mod e20_energy;
pub mod e21_virtual_time;
pub mod e22_fault_goodput;
pub mod e23_trace_breakdown;
pub mod e24_wire_compression;
pub mod e25_placement;
pub mod e26_kernel_bench;
pub mod e27_goodput;
pub mod e28_serving;
pub mod e29_tuning;

/// All experiment ids, in order.
pub const ALL: [&str; 29] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e24", "e25", "e26", "e27", "e28",
    "e29",
];

/// Run one experiment by id. Returns false for an unknown id.
pub fn run(id: &str) -> bool {
    match id {
        "e1" => e01_configs::run(),
        "e2" => e02_weak_scaling::run(),
        "e3" => e03_alltoall::run(),
        "e4" => e04_load_balance::run(),
        "e5" => e05_precision::run(),
        "e6" => e06_breakdown::run(),
        "e7" => e07_memory::run(),
        "e8" => e08_convergence::run(),
        "e9" => e09_headline::run(),
        "e10" => e10_checkpoint::run(),
        "e11" => e11_strong_scaling::run(),
        "e12" => e12_capacity::run(),
        "e13" => e13_simnet::run(),
        "e14" => e14_overlap::run(),
        "e15" => e15_placement::run(),
        "e16" => e16_allreduce::run(),
        "e17" => e17_multimodal::run(),
        "e18" => e18_two_level_gate::run(),
        "e19" => e19_kernel_tiling::run(),
        "e20" => e20_energy::run(),
        "e21" => e21_virtual_time::run(),
        "e22" => e22_fault_goodput::run(),
        "e23" => e23_trace_breakdown::run(),
        "e24" => e24_wire_compression::run(),
        "e25" => e25_placement::run(),
        "e26" => e26_kernel_bench::run(),
        "e27" => e27_goodput::run(),
        "e28" => e28_serving::run(),
        "e29" => e29_tuning::run(),
        _ => return false,
    }
    true
}
