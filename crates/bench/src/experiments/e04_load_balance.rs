//! E4 — expert load balance across gate types and token skews.
//!
//! Tokens are drawn uniform / Zipf(0.8) / Zipf(1.2), embedded through a
//! fixed random table, and routed by each gate type with capacity factor
//! 1.25. Reported: max/mean load imbalance, token drop rate, and the
//! auxiliary balance loss — the three quantities that decide expert-
//! parallel step time (which is set by the most loaded expert).

use crate::table::Table;
use bagualu::model::embedding::Embedding;
use bagualu::model::moe::{Gate, GateKind};
use bagualu::tensor::rng::{Rng, Zipf};

const D: usize = 32;
const EXPERTS: usize = 64;
const VOCAB: usize = 512;
const TOKENS: usize = 4096;

fn routing_for(kind: GateKind, skew: f64, cf: f32) -> (f64, f64, f64) {
    let mut rng = Rng::seed_from(404);
    let mut emb = Embedding::new("emb", VOCAB, D, &mut rng);
    let mut gate = Gate::new("g", D, EXPERTS, kind, cf, 0.01, &mut rng);
    let zipf = Zipf::new(VOCAB, skew);
    let mut data_rng = Rng::seed_from(405);
    let ids: Vec<usize> = (0..TOKENS).map(|_| zipf.sample(&mut data_rng)).collect();
    let x = emb.forward(&ids);
    let r = gate.forward(&x);
    // Share of tokens whose first choice is the single hottest expert —
    // the quantity the auxiliary loss pushes down during real training.
    let hot = *r.raw_load.iter().max().unwrap() as f64 / TOKENS as f64;
    (r.imbalance(), r.drop_rate(), hot)
}

pub fn run() {
    println!("== E4: expert load balance (64 experts, 4096 tokens, capacity factor 1.25) ==\n");
    let mut t = Table::new(&[
        "token skew",
        "gate",
        "imbalance (max/mean)",
        "drop rate",
        "hottest expert share",
    ]);
    for &(skew, label) in &[(0.0, "uniform"), (0.8, "zipf 0.8"), (1.2, "zipf 1.2")] {
        for (kind, name) in [
            (GateKind::Top1, "top-1 (switch)"),
            (GateKind::Top2, "top-2 (gshard)"),
            (GateKind::NoisyTop1, "noisy top-1"),
            (GateKind::Balanced, "balanced greedy"),
        ] {
            let (imb, drop, hot) = routing_for(kind, skew, 1.25);
            t.row(&[
                label.into(),
                name.into(),
                format!("{imb:.2}"),
                format!("{:.1}%", drop * 100.0),
                format!("{:.1}% (fair: {:.1}%)", hot * 100.0, 100.0 / EXPERTS as f64),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: skew drives top-1/top-2 imbalance and drop rates up; the\n\
         balance-aware gate bounds imbalance at the capacity factor with zero\n\
         drops — the property that keeps the all-to-all and expert compute\n\
         balanced at scale (expert-parallel step time follows the max load).\n"
    );
}
