//! E21 — virtual communication time of a *functional* training step.
//!
//! The timed communicator charges every real message of a real distributed
//! step the α–β cost it would pay on the Sunway topology. Unlike the E2/E6
//! projections (closed-form, assume ideal algorithms), this measures the
//! *implemented* algorithms — including their actual message counts,
//! bundle sizes, and serialization order — at thread scale, and unlike E3
//! it measures them inside the full model, routing real gated traffic.

use crate::table::Table;
use bagualu::comm::shm::{Communicator, World};
use bagualu::comm::timed::{TimedComm, TwoLevelCost};
use bagualu::model::config::ModelConfig;
use bagualu::model::loss::cross_entropy;
use bagualu::model::param::HasParams;
use bagualu::parallel::model_dist::DistTransformer;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::parallel::sync::sync_grads;
use bagualu::tensor::rng::Rng;

const NRANKS: usize = 16;
const SUPERNODE: usize = 4;
const BATCH: usize = 2;
const SEQ: usize = 8;

fn timed_step(a2a: A2aKind) -> (f64, f64) {
    let cfg = ModelConfig {
        n_experts: NRANKS,
        ..ModelConfig::tiny()
    };
    let world = World::new(NRANKS);
    let comms = TimedComm::wrap_all(world.comms(), TwoLevelCost::sunway_like(SUPERNODE));
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| {
                s.spawn(move || {
                    let rank = comm.rank();
                    let mut model = DistTransformer::new(cfg, 21, rank, NRANKS, a2a);
                    let mut data_rng = Rng::for_rank(5, rank);
                    // Forward + backward + grad sync: the full comm pattern.
                    let tokens: Vec<usize> = (0..BATCH * SEQ)
                        .map(|_| data_rng.below(cfg.vocab))
                        .collect();
                    let targets: Vec<usize> = (0..BATCH * SEQ)
                        .map(|_| data_rng.below(cfg.vocab))
                        .collect();
                    let logits = model.forward(&tokens, BATCH, SEQ, comm);
                    let (_, dlogits) = cross_entropy(&logits, &targets);
                    model.backward(&dlogits, comm);
                    let fwd_bwd_time = comm.virtual_makespan();
                    sync_grads(&mut model, comm);
                    model.zero_grad();
                    comm.barrier();
                    (fwd_bwd_time, comm.virtual_makespan())
                })
            })
            .collect();
        let results: Vec<(f64, f64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let a2a_time = results.iter().map(|r| r.0).fold(0.0, f64::max);
        let total = results.iter().map(|r| r.1).fold(0.0, f64::max);
        (a2a_time, total)
    })
}

pub fn run() {
    println!(
        "== E21: virtual comm time of one functional MoDa step \
         (16 ranks, supernodes of 4) ==\n"
    );
    let mut t = Table::new(&[
        "all-to-all",
        "dispatch+combine (ms)",
        "incl. grad sync (ms)",
        "speedup",
    ]);
    let (flat_a2a, flat_total) = timed_step(A2aKind::Pairwise);
    let (hier_a2a, hier_total) = timed_step(A2aKind::Hierarchical {
        supernode_size: SUPERNODE,
    });
    t.row(&[
        "pairwise".into(),
        format!("{:.3}", flat_a2a * 1e3),
        format!("{:.3}", flat_total * 1e3),
        "1.00x".into(),
    ]);
    t.row(&[
        "hierarchical".into(),
        format!("{:.3}", hier_a2a * 1e3),
        format!("{:.3}", hier_total * 1e3),
        format!("{:.2}x", flat_total / hier_total),
    ]);
    t.print();

    // Sanity anchor: parameter traffic volume of the grad sync.
    let cfg = ModelConfig {
        n_experts: NRANKS,
        ..ModelConfig::tiny()
    };
    let mut rng = Rng::seed_from(1);
    let mut model = DistTransformer::new(cfg, 21, 0, NRANKS, A2aKind::Pairwise);
    let _ = &mut rng;
    let mut dense = 0usize;
    model.visit_dense_params(&mut |p| dense += p.value.len());
    println!(
        "\n(dense all-reduce payload: {dense} floats per rank per step)\n\
         Reading: the virtual-time gap on the *implemented* algorithms, inside\n\
         the full model with real gated traffic, confirms the E3 projection at\n\
         a scale where every message is real. This is the bridge between the\n\
         functional runtime and the 96,000-node extrapolations.\n"
    );
}
