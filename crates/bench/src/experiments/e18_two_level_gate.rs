//! E18 — flat vs two-level router ablation.
//!
//! At 108,000 experts the flat gate's `d×E` projection is the single
//! largest per-token compute term (E9). The two-level router reduces it to
//! `d·(√E + E/√E)`. Two halves:
//!
//! * **functional**: the same tiny model trained with each router —
//!   convergence and balance are comparable;
//! * **projected**: full-machine step time and sustained FLOPS with each
//!   router's gate cost.

use crate::table::Table;
use bagualu::metrics::format_si;
use bagualu::model::config::ModelConfig;
use bagualu::model::moe::TwoLevelGate;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::Transformer;
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::perfmodel::{project, PerfInput};
use bagualu::tensor::rng::Rng;

fn train_local(cfg: ModelConfig, steps: usize) -> Vec<f32> {
    let mut rng = Rng::seed_from(1818);
    let mut model = Transformer::new(cfg, &mut rng);
    let mut opt = Adam::new(AdamConfig {
        lr: 1e-2,
        ..Default::default()
    });
    let mut data_rng = Rng::seed_from(1819);
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        let tokens: Vec<usize> = (0..32).map(|_| data_rng.below(cfg.vocab)).collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t * 3 + 1) % cfg.vocab).collect();
        let s = model.train_batch(&tokens, &targets, 4, 8);
        opt.step(&mut model);
        model.zero_grad();
        losses.push(s.ce_loss);
    }
    losses
}

pub fn run() {
    println!("== E18a: functional — flat vs two-level router, 16 experts, 200 steps ==\n");
    let base = ModelConfig {
        n_experts: 16,
        ..ModelConfig::tiny()
    };
    let flat = train_local(base, 200);
    let two = train_local(
        ModelConfig {
            router_groups: 4,
            ..base
        },
        200,
    );
    let mut t = Table::new(&["step", "flat gate loss", "two-level loss"]);
    for s in [0usize, 50, 100, 150, 199] {
        t.row(&[
            format!("{s}"),
            format!("{:.4}", flat[s]),
            format!("{:.4}", two[s]),
        ]);
    }
    t.print();

    println!("\n== E18b: projected — gate cost at brain scale (174T, 96,000 nodes) ==\n");
    let mut t = Table::new(&[
        "router",
        "gate flops/token",
        "gate time (s)",
        "step time",
        "throughput",
    ]);
    let cfg = ModelConfig::bagualu_174t();
    for (label, two_level) in [("flat (d×E)", false), ("two-level (d×(√E+E/√E))", true)] {
        let p = project(&PerfInput {
            two_level_gate: two_level,
            ..PerfInput::sunway_full(cfg)
        });
        let gate_flops = if two_level {
            TwoLevelGate::flops_per_token(cfg.d_model, cfg.n_experts, 329)
                * cfg.n_moe_blocks() as f64
        } else {
            2.0 * cfg.d_model as f64 * cfg.n_experts as f64 * cfg.n_moe_blocks() as f64
        };
        t.row(&[
            label.into(),
            format_si(gate_flops, "F"),
            format!("{:.3}", p.breakdown.gate_compute),
            format!("{:.2} s", p.step_time),
            format_si(p.tokens_per_sec, "tok/s"),
        ]);
    }
    t.print();
    println!(
        "\nShape check: training quality is unaffected (E18a) while the brain-\n\
         scale gate compute collapses by two orders of magnitude, buying ~25%\n\
         more training throughput at 174T (E18b). (Sustained-FLOPS comparisons\n\
         are misleading here: the flat gate's extra flops are counted as 'useful'\n\
         work, which is exactly the problem the two-level router removes.)\n"
    );
}
