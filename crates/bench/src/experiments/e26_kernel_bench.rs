//! E26 — the compute floor: GEMM throughput per backend.
//!
//! Measures achieved GFLOP/s for every `MatmulBackend` on the GEMM shapes
//! the trainer actually runs (square NN at several sizes, plus the NT/TN
//! backward layouts and the fused bias+GELU epilogue), self-gating on:
//!
//! * correctness — `Tiled` must agree with `Reference` **bitwise** before
//!   any timing is believed;
//! * performance — `Tiled` must sustain ≥ `TILED_MIN_SPEEDUP`× the
//!   `Reference` GFLOP/s at 512³ wherever the wide AVX-512 micro-kernel
//!   runs (≥ `PORTABLE_MIN_SPEEDUP`× elsewhere, recorded in the JSON as
//!   `wide_kernel`), the CI kernel-bench gate. The ratio is per-core (both
//!   backends parallelize identically) and both sides are timed in the
//!   same process, so the gate holds on single-core and noisy runners.
//!
//! Artifacts: `target/e26/kernel-table.txt` (human table) and
//! `BENCH_kernels.json` at the repo root — the machine-readable start of
//! the cross-PR kernel-perf trajectory (schema `bagualu-kernel-bench/v1`).
//! Half-compute rows time the *whole* operation including operand
//! quantization — the honest number a training step sees.

use crate::table::Table;
use bagualu::tensor::ops::{Activation, ComputeBackend};
use bagualu::tensor::rng::Rng;
use bagualu::tensor::Tensor;
use std::time::Instant;

const TABLE_OUT: &str = "target/e26/kernel-table.txt";
const JSON_OUT: &str = "BENCH_kernels.json";

/// The CI gate where the wide (AVX-512) micro-kernel runs: tiled must
/// beat reference by at least this factor on the gate shape. The 6×64
/// register tile keeps C out of the k-loop entirely and runs 16-lane
/// multiply+add against packed B panels, so 3× holds with margin there.
/// On hosts without AVX-512 the portable 8×8 tile only has the same
/// vector width the reference auto-vectorizes to, so the floor drops to
/// [`PORTABLE_MIN_SPEEDUP`] — strictly faster, honestly labelled.
const TILED_MIN_SPEEDUP: f64 = 3.0;
/// The floor applied when only the portable micro-kernel is available.
const PORTABLE_MIN_SPEEDUP: f64 = 1.0;
/// The gate shape: large enough that B (1 MiB) falls out of L1/L2 and the
/// reference kernel's streaming cost shows.
const GATE_DIM: usize = 512;

/// Best-of-N wall time for one op, with one untimed warmup.
fn best_ns(reps: usize, mut f: impl FnMut() -> Tensor) -> u64 {
    std::hint::black_box(f());
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn gflops(flops: u64, ns: u64) -> f64 {
    flops as f64 / ns as f64
}

struct Row {
    backend: String,
    op: &'static str,
    m: usize,
    k: usize,
    n: usize,
    ns: u64,
    gflops: f64,
}

pub fn run() {
    println!("== E26: compute floor — GEMM throughput per backend ==\n");
    let backends = [
        ComputeBackend::Reference,
        ComputeBackend::Tiled,
        ComputeBackend::Half(bagualu::tensor::DType::BF16),
        ComputeBackend::Half(bagualu::tensor::DType::F16),
    ];

    // Correctness first: no timing is meaningful if the kernels disagree.
    {
        let mut rng = Rng::seed_from(99);
        let a = Tensor::randn(&[130, 257], 1.0, &mut rng);
        let b = Tensor::randn(&[257, 140], 1.0, &mut rng);
        let r = ComputeBackend::Reference.instantiate().matmul(&a, &b);
        let t = ComputeBackend::Tiled.instantiate().matmul(&a, &b);
        for (x, y) in r.as_slice().iter().zip(t.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "tiled must be bit-identical to reference"
            );
        }
        println!("correctness: tiled == reference bitwise on 130x257x140 ✓\n");
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut rng = Rng::seed_from(7);

    // ---- Square NN sweep (the forward-pass shape).
    println!("-- square NN GFLOP/s (best of N) --");
    let mut t = Table::new(&["backend", "128^3", "256^3", "512^3"]);
    let mut nn_512: Vec<(String, f64)> = Vec::new();
    for cb in backends {
        let be = cb.instantiate();
        let mut cells = vec![cb.to_string()];
        for dim in [128usize, 256, GATE_DIM] {
            let a = Tensor::randn(&[dim, dim], 1.0, &mut rng);
            let b = Tensor::randn(&[dim, dim], 1.0, &mut rng);
            let flops = 2 * (dim as u64).pow(3);
            let reps = if dim >= GATE_DIM { 5 } else { 3 };
            let ns = best_ns(reps, || be.matmul(&a, &b));
            let gf = gflops(flops, ns);
            cells.push(format!("{gf:.2}"));
            rows.push(Row {
                backend: cb.to_string(),
                op: "nn",
                m: dim,
                k: dim,
                n: dim,
                ns,
                gflops: gf,
            });
            if dim == GATE_DIM {
                nn_512.push((cb.to_string(), gf));
            }
        }
        t.row(&[
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    t.print();

    // ---- The CI gate.
    let ref_512 = nn_512
        .iter()
        .find(|(b, _)| b == "reference")
        .expect("reference measured")
        .1;
    let tiled_512 = nn_512
        .iter()
        .find(|(b, _)| b == "tiled")
        .expect("tiled measured")
        .1;
    let speedup = tiled_512 / ref_512;
    let wide = bagualu::tensor::ops::wide_kernel_available();
    let floor = if wide {
        TILED_MIN_SPEEDUP
    } else {
        PORTABLE_MIN_SPEEDUP
    };
    println!(
        "\ngate: tiled {tiled_512:.2} GFLOP/s vs reference {ref_512:.2} GFLOP/s \
         at {GATE_DIM}^3 → {speedup:.2}x (floor {floor}x, wide kernel: {wide})"
    );
    assert!(
        speedup >= floor,
        "tiled backend must sustain >={floor}x reference GFLOP/s at \
         {GATE_DIM}^3 (wide kernel: {wide}), got {speedup:.2}x \
         ({tiled_512:.2} vs {ref_512:.2})"
    );

    // ---- Backward layouts + fused epilogue at 256, reference vs tiled.
    println!("\n-- layout & epilogue GFLOP/s at 256^3 --");
    let mut t2 = Table::new(&["backend", "nt (dX)", "tn (dW)", "nn+bias+gelu"]);
    let dim = 256usize;
    let flops = 2 * (dim as u64).pow(3);
    for cb in [ComputeBackend::Reference, ComputeBackend::Tiled] {
        let be = cb.instantiate();
        let a = Tensor::randn(&[dim, dim], 1.0, &mut rng);
        let b = Tensor::randn(&[dim, dim], 1.0, &mut rng);
        let bias: Vec<f32> = (0..dim).map(|j| j as f32 * 1e-3).collect();
        type OpSpec<'a> = (&'static str, Box<dyn Fn() -> Tensor + 'a>);
        let specs: [OpSpec; 3] = [
            ("nt", Box::new(|| be.matmul_nt(&a, &b))),
            ("tn", Box::new(|| be.matmul_tn(&a, &b))),
            (
                "nn_bias_gelu",
                Box::new(|| be.matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu)),
            ),
        ];
        let mut cells = vec![cb.to_string()];
        for (op, f) in specs {
            let ns = best_ns(3, f);
            let gf = gflops(flops, ns);
            cells.push(format!("{gf:.2}"));
            rows.push(Row {
                backend: cb.to_string(),
                op,
                m: dim,
                k: dim,
                n: dim,
                ns,
                gflops: gf,
            });
        }
        t2.row(&[
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    t2.print();

    // ---- Artifacts.
    let mut artifact = String::from("E26 kernel bench\n\nsquare NN GFLOP/s\n");
    artifact.push_str(&t.render());
    artifact.push_str(&format!(
        "\ngate: tiled/reference at {GATE_DIM}^3 = {speedup:.2}x \
         (floor {floor}x, wide kernel: {wide})\n"
    ));
    artifact.push_str("\nlayouts at 256^3\n");
    artifact.push_str(&t2.render());
    std::fs::create_dir_all("target/e26").expect("create target/e26");
    std::fs::write(TABLE_OUT, &artifact).expect("write kernel table");

    let mut json = String::from("{\n  \"schema\": \"bagualu-kernel-bench/v1\",\n");
    json.push_str(&format!(
        "  \"gate\": {{\"shape\": \"{GATE_DIM}^3\", \"tiled_over_reference\": {speedup:.3}, \
         \"floor\": {floor}, \"wide_kernel\": {wide}}},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"op\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"best_ns\": {}, \"gflops\": {:.3}}}{}\n",
            r.backend,
            r.op,
            r.m,
            r.k,
            r.n,
            r.ns,
            r.gflops,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(JSON_OUT, json).expect("write BENCH_kernels.json");

    println!(
        "\nwrote {TABLE_OUT} and {JSON_OUT}\n\n\
         Shape check: the tiled kernel's win comes from memory operations per\n\
         FLOP (register-tiled C, packed B panels), so it is per-core and\n\
         survives any runner's thread count. Half-compute rows pay operand\n\
         quantization up front — at 512^3 that is O(n^2) against O(n^3)\n\
         compute, so the gap to tiled narrows as shapes grow (the reproduction\n\
         analogue of mixed-precision arithmetic intensity on the CPEs).\n"
    );
}
