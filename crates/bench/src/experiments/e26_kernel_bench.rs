//! E26 — the compute floor: GEMM + row-op throughput per backend.
//!
//! Measures achieved GFLOP/s for every `MatmulBackend` on the GEMM shapes
//! the trainer actually runs (square NN at several sizes, plus the NT/TN
//! backward layouts and the fused bias+GELU epilogue at 256³ **and** the
//! 512³ gate shape), and elements/s for both `RowOpsBackend` tiers on the
//! softmax / layer-norm / Adam kernels. Self-gating on:
//!
//! * correctness — `Tiled` must agree with `Reference` **bitwise** (NN and
//!   NT) and the vectorized row-op tier must agree with the reference tier
//!   bitwise before any timing is believed;
//! * performance — three CI gates at 512³, all per-core ratios timed in
//!   the same process (so they hold on single-core and noisy runners):
//!   - `nn_tiled_over_reference` ≥ [`NN_TILED_MIN_SPEEDUP`]× where the
//!     wide AVX-512 micro-kernel runs,
//!   - `nt_tiled_over_reference` ≥ [`NT_TILED_MIN_SPEEDUP`]× — the packed
//!     dot4-order NT kernel must actually beat the scalar reference,
//!   - `nn_fma_over_tiled` ≥ [`FMA_MIN_SPEEDUP`]× — the opt-in FMA tier
//!     must pay for its loss of bit-identity.
//!
//!   On hosts without AVX-512 every floor drops to
//!   [`PORTABLE_MIN_SPEEDUP`] (recorded in the JSON as `wide_kernel`).
//!
//! Every GEMM row also reports arithmetic intensity (FLOPs per byte of
//! minimum streaming traffic) and percent-of-roofline against an
//! approximate single-core host model ([`host_roofline`]) — so the table
//! says not just "faster than reference" but "how far from the machine".
//!
//! Artifacts: `target/e26/kernel-table.txt` (human table) and
//! `BENCH_kernels.json` at the repo root (schema `bagualu-kernel-bench/v2`)
//! — the machine-readable cross-PR kernel-perf trajectory. Half-compute
//! rows time the *whole* operation including operand quantization — the
//! honest number a training step sees.

use crate::table::Table;
use bagualu::hw::{Precision, Roofline};
use bagualu::tensor::ops::{Activation, AdamStep, ComputeBackend};
use bagualu::tensor::rng::Rng;
use bagualu::tensor::Tensor;
use std::time::Instant;

const TABLE_OUT: &str = "target/e26/kernel-table.txt";
const JSON_OUT: &str = "BENCH_kernels.json";

/// NN gate where the wide (AVX-512) micro-kernel runs: the 6×64 register
/// tile keeps C out of the k-loop entirely and runs 16-lane multiply+add
/// against packed B panels, so 3× over the reference holds with margin.
pub const NN_TILED_MIN_SPEEDUP: f64 = 3.0;
/// NT gate where the wide kernel runs: the packed dot4-order kernel keeps
/// 4 chain accumulators × 4 ZMM columns in registers against full-k packed
/// Bᵀ panels; 2× over the scalar reference is conservative.
pub const NT_TILED_MIN_SPEEDUP: f64 = 2.0;
/// FMA gate where the wide kernel runs: fusing multiply+add halves the
/// arithmetic µops of the inner loops, so the opt-in tier must show at
/// least 1.5× over the exact tiled backend to justify giving up
/// bit-identity.
pub const FMA_MIN_SPEEDUP: f64 = 1.5;
/// The floor applied to every gate when only the portable micro-kernel is
/// available (no AVX-512): strictly not-slower, honestly labelled.
pub const PORTABLE_MIN_SPEEDUP: f64 = 1.0;
/// The gate shape: large enough that B (1 MiB) falls out of L1/L2 and the
/// reference kernel's streaming cost shows.
const GATE_DIM: usize = 512;

/// Approximate roofline model of the benchmark host, used only to put the
/// achieved rates in context (`pct_roofline` is reporting, never gated —
/// the model is not measured on the runner). Assumptions, documented so
/// the percentages mean something: one core at a nominal 2 GHz sustaining
/// one 16-lane FMA per cycle → 64 GFLOP/s fp32; the half backends convert
/// to fp32 and compute fp32, so their sustained rate is the same; fp64
/// halves the lanes; ~12 GB/s single-core DRAM stream; zero launch
/// overhead for in-process calls.
pub fn host_roofline() -> Roofline {
    Roofline::from_rates(64.0e9, 64.0e9, 32.0e9, 12.0e9, 0.0)
}

const HOST_FP32_GFLOPS: f64 = 64.0;
const HOST_MEM_BW_GBPS: f64 = 12.0;

/// Best-of-N wall time for one op, with one untimed warmup.
fn best_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> u64 {
    std::hint::black_box(f());
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn gflops(flops: u64, ns: u64) -> f64 {
    flops as f64 / ns as f64
}

/// Best-of-N for two ops with their reps *interleaved*: rep i of `f` runs
/// immediately before rep i of `g`, on the same operands. Gate ratios use
/// this instead of sweep-table rows because the table times each backend
/// as a block — on shared or frequency-scaling runners, minutes of drift
/// between blocks shows up as ratio noise that a paired measurement
/// cancels.
fn paired_best<T>(reps: usize, mut f: impl FnMut() -> T, mut g: impl FnMut() -> T) -> (u64, u64) {
    std::hint::black_box(f());
    std::hint::black_box(g());
    let (mut bf, mut bg) = (u64::MAX, u64::MAX);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        bf = bf.min(t0.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        std::hint::black_box(g());
        bg = bg.min(t0.elapsed().as_nanos() as u64);
    }
    (bf, bg)
}

/// Running state of one gate's paired measurement, sampled at several
/// points dispersed across the run. On a shared single-core runner the
/// machine oscillates between quiet and contended windows lasting
/// seconds; a contended window compresses both rates *and* their ratio,
/// so back-to-back retries cannot escape it. The gates assert peak
/// kernel capability, so each pair keeps its global best-of across all
/// sample points, and a pair that has already cleared its floor is not
/// re-sampled.
struct GatePair {
    best_f: u64,
    best_g: u64,
    floor: f64,
    rounds: usize,
}

impl GatePair {
    fn new(floor: f64) -> GatePair {
        GatePair {
            best_f: u64::MAX,
            best_g: u64::MAX,
            floor,
            rounds: 0,
        }
    }

    fn ratio(&self) -> f64 {
        self.best_f as f64 / self.best_g as f64
    }

    fn passing(&self) -> bool {
        self.rounds > 0 && self.ratio() >= self.floor
    }

    fn absorb(&mut self, f: u64, g: u64) {
        self.best_f = self.best_f.min(f);
        self.best_g = self.best_g.min(g);
        self.rounds += 1;
    }
}

struct Row {
    backend: String,
    op: &'static str,
    m: usize,
    k: usize,
    n: usize,
    ns: u64,
    gflops: f64,
    /// FLOPs per byte of minimum streaming traffic (both operands + the
    /// output once each, at their in-memory fp32 width).
    ai: f64,
    /// Achieved rate as a percentage of the [`host_roofline`] rate for
    /// this row's FLOPs/bytes.
    pct_roofline: f64,
}

struct RowOpRow {
    backend: &'static str,
    op: &'static str,
    rows: usize,
    cols: usize,
    ns: u64,
    /// Billions of elements per second.
    gelems: f64,
}

struct Gate {
    name: &'static str,
    op: &'static str,
    shape: String,
    ratio: f64,
    floor: f64,
}

/// Build one GEMM row: time it, then attach intensity and roofline
/// context. All operands live in memory as fp32, so the minimum traffic is
/// `4(mk + kn + mn)` bytes regardless of the compute dtype (the half
/// backends' packed copies are extra traffic the percentage honestly
/// charges against them).
#[allow(clippy::too_many_arguments)]
fn gemm_row(
    backend: &str,
    op: &'static str,
    m: usize,
    k: usize,
    n: usize,
    precision: Precision,
    reps: usize,
    f: impl FnMut() -> Tensor,
) -> Row {
    let ns = best_ns(reps, f);
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    let bytes = 4.0 * (m * k + k * n + m * n) as f64;
    let gf = gflops(flops, ns);
    let rl = host_roofline().kernel(flops as f64, bytes, precision);
    let roof_gflops = rl.flops / rl.time / 1.0e9;
    Row {
        backend: backend.to_string(),
        op,
        m,
        k,
        n,
        ns,
        gflops: gf,
        ai: flops as f64 / bytes,
        pct_roofline: 100.0 * gf / roof_gflops,
    }
}

/// Bitwise prechecks: no timing is meaningful if the kernels disagree.
fn precheck() {
    let mut rng = Rng::seed_from(99);
    let a = Tensor::randn(&[130, 257], 1.0, &mut rng);
    let b = Tensor::randn(&[257, 140], 1.0, &mut rng);
    let reference = ComputeBackend::Reference.instantiate();
    let tiled = ComputeBackend::Tiled.instantiate();
    let assert_bits = |x: &Tensor, y: &Tensor, what: &str| {
        for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits(), "{what} must be bit-identical");
        }
    };
    assert_bits(
        &reference.matmul(&a, &b),
        &tiled.matmul(&a, &b),
        "tiled nn vs reference",
    );
    let bt = Tensor::randn(&[140, 257], 1.0, &mut rng);
    assert_bits(
        &reference.matmul_nt(&a, &bt),
        &tiled.matmul_nt(&a, &bt),
        "tiled nt vs reference",
    );

    // Row-op tiers: the vectorized tier splits rows across threads but
    // never reorders a within-row reduction, so it must be bit-identical.
    let ref_ops = ComputeBackend::Reference.instantiate_row_ops();
    let vec_ops = ComputeBackend::Tiled.instantiate_row_ops();
    let x = Tensor::randn(&[65, 130], 2.0, &mut rng);
    let (mut xa, mut xb) = (x.clone(), x.clone());
    ref_ops.softmax_rows_inplace(&mut xa);
    vec_ops.softmax_rows_inplace(&mut xb);
    assert_bits(&xa, &xb, "vectorized softmax vs reference");
    let gamma: Vec<f32> = (0..130).map(|i| 1.0 + i as f32 * 1e-3).collect();
    let beta: Vec<f32> = (0..130).map(|i| i as f32 * 1e-2).collect();
    let la = ref_ops.layernorm_rows(&x, &gamma, &beta, 1e-5);
    let lb = vec_ops.layernorm_rows(&x, &gamma, &beta, 1e-5);
    assert_bits(&la.y, &lb.y, "vectorized layernorm vs reference");

    println!(
        "correctness: tiled == reference bitwise (nn 130x257x140, nt 130x257x140);\n\
         \x20            vectorized row-ops == reference bitwise (softmax, layernorm) ✓\n"
    );
}

pub fn run() {
    println!("== E26: compute floor — GEMM + row-op throughput per backend ==\n");
    precheck();

    let wide = bagualu::tensor::ops::wide_kernel_available();
    let mut rows: Vec<Row> = Vec::new();
    let mut rng = Rng::seed_from(7);

    // ---- Gate operands are allocated first (this process's first large
    // allocations: fresh mmap, page-aligned), and the paired gate rounds
    // are sampled at several points dispersed across the run — see
    // [`GatePair`] for why back-to-back retries are not enough.
    let floor_of = |wide_floor: f64| {
        if wide {
            wide_floor
        } else {
            PORTABLE_MIN_SPEEDUP
        }
    };
    let ga = Tensor::randn(&[GATE_DIM, GATE_DIM], 1.0, &mut rng);
    let gb = Tensor::randn(&[GATE_DIM, GATE_DIM], 1.0, &mut rng);
    let reference = ComputeBackend::Reference.instantiate();
    let tiled = ComputeBackend::Tiled.instantiate();
    let fma = ComputeBackend::TiledFma.instantiate();
    let mut gate_nn = GatePair::new(floor_of(NN_TILED_MIN_SPEEDUP));
    let mut gate_nt = GatePair::new(floor_of(NT_TILED_MIN_SPEEDUP));
    let mut gate_fma = GatePair::new(floor_of(FMA_MIN_SPEEDUP));
    let sample_gates = |nn: &mut GatePair, nt: &mut GatePair, fm: &mut GatePair| {
        if !nn.passing() {
            let (f, g) = paired_best(11, || reference.matmul(&ga, &gb), || tiled.matmul(&ga, &gb));
            nn.absorb(f, g);
        }
        if !nt.passing() {
            let (f, g) = paired_best(
                7,
                || reference.matmul_nt(&ga, &gb),
                || tiled.matmul_nt(&ga, &gb),
            );
            nt.absorb(f, g);
        }
        if !fm.passing() {
            let (f, g) = paired_best(15, || tiled.matmul(&ga, &gb), || fma.matmul(&ga, &gb));
            fm.absorb(f, g);
        }
    };
    sample_gates(&mut gate_nn, &mut gate_nt, &mut gate_fma);

    // ---- Square NN sweep (the forward-pass shape).
    let backends = [
        ComputeBackend::Reference,
        ComputeBackend::Tiled,
        ComputeBackend::TiledFma,
        ComputeBackend::Half(bagualu::tensor::DType::BF16),
        ComputeBackend::Half(bagualu::tensor::DType::F16),
    ];
    println!(
        "-- square NN GFLOP/s (best of N; %roof vs ~{HOST_FP32_GFLOPS:.0} GFLOP/s host model) --"
    );
    let mut t = Table::new(&["backend", "128^3", "256^3", "512^3", "%roof@512"]);
    for cb in backends {
        let be = cb.instantiate();
        let precision = match cb {
            ComputeBackend::Half(_) => Precision::Half,
            _ => Precision::FP32,
        };
        let mut cells = vec![cb.to_string()];
        let mut pct = 0.0;
        for dim in [128usize, 256, GATE_DIM] {
            let a = Tensor::randn(&[dim, dim], 1.0, &mut rng);
            let b = Tensor::randn(&[dim, dim], 1.0, &mut rng);
            let reps = if dim >= GATE_DIM { 5 } else { 3 };
            let row = gemm_row(
                &cb.to_string(),
                "nn",
                dim,
                dim,
                dim,
                precision,
                reps,
                || be.matmul(&a, &b),
            );
            cells.push(format!("{:.2}", row.gflops));
            if dim == GATE_DIM {
                pct = row.pct_roofline;
            }
            rows.push(row);
        }
        cells.push(format!("{pct:.1}%"));
        t.row(&[
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            cells[4].clone(),
        ]);
    }
    t.print();
    sample_gates(&mut gate_nn, &mut gate_nt, &mut gate_fma);

    // ---- Backward layouts + fused epilogue at 256³ and the 512³ gate
    // shape, for the three fp32 backends.
    println!("\n-- layout & epilogue GFLOP/s --");
    let mut t2 = Table::new(&["backend", "shape", "nt (dX)", "tn (dW)", "nn+bias+gelu"]);
    for cb in [
        ComputeBackend::Reference,
        ComputeBackend::Tiled,
        ComputeBackend::TiledFma,
    ] {
        let be = cb.instantiate();
        for dim in [256usize, GATE_DIM] {
            let a = Tensor::randn(&[dim, dim], 1.0, &mut rng);
            let b = Tensor::randn(&[dim, dim], 1.0, &mut rng);
            let bias: Vec<f32> = (0..dim).map(|j| j as f32 * 1e-3).collect();
            let reps = if dim >= GATE_DIM { 5 } else { 3 };
            type OpSpec<'a> = (&'static str, Box<dyn FnMut() -> Tensor + 'a>);
            let specs: [OpSpec; 3] = [
                ("nt", Box::new(|| be.matmul_nt(&a, &b))),
                ("tn", Box::new(|| be.matmul_tn(&a, &b))),
                (
                    "nn_bias_gelu",
                    Box::new(|| be.matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu)),
                ),
            ];
            let mut cells = vec![cb.to_string(), format!("{dim}^3")];
            for (op, f) in specs {
                let row = gemm_row(&cb.to_string(), op, dim, dim, dim, Precision::FP32, reps, f);
                cells.push(format!("{:.2}", row.gflops));
                rows.push(row);
            }
            t2.row(&[
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
                cells[4].clone(),
            ]);
        }
    }
    t2.print();
    sample_gates(&mut gate_nn, &mut gate_nt, &mut gate_fma);

    // ---- Row-op tiers: elements/s for softmax, layernorm, Adam.
    println!("\n-- row-op Gelem/s (reference vs vectorized tier) --");
    let mut rowop_rows: Vec<RowOpRow> = Vec::new();
    let mut t3 = Table::new(&["tier", "softmax 256x2048", "layernorm 256x2048", "adam 1M"]);
    let (rn, rc) = (256usize, 2048usize);
    let adam_len = 1usize << 20;
    for (tier, cb) in [
        ("reference", ComputeBackend::Reference),
        ("vectorized", ComputeBackend::Tiled),
    ] {
        let ops = cb.instantiate_row_ops();
        let mut cells = vec![tier.to_string()];

        let x = Tensor::randn(&[rn, rc], 1.0, &mut rng);
        let mut buf = x.clone();
        let ns = best_ns(5, || ops.softmax_rows_inplace(&mut buf));
        let gel = (rn * rc) as f64 / ns as f64;
        cells.push(format!("{gel:.3}"));
        rowop_rows.push(RowOpRow {
            backend: tier,
            op: "softmax",
            rows: rn,
            cols: rc,
            ns,
            gelems: gel,
        });

        let gamma: Vec<f32> = (0..rc).map(|i| 1.0 + i as f32 * 1e-4).collect();
        let beta: Vec<f32> = (0..rc).map(|i| i as f32 * 1e-3).collect();
        let ns = best_ns(5, || ops.layernorm_rows(&x, &gamma, &beta, 1e-5));
        let gel = (rn * rc) as f64 / ns as f64;
        cells.push(format!("{gel:.3}"));
        rowop_rows.push(RowOpRow {
            backend: tier,
            op: "layernorm",
            rows: rn,
            cols: rc,
            ns,
            gelems: gel,
        });

        let step = AdamStep {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            bc1: 0.1,
            bc2: 0.001,
        };
        let g = Tensor::randn(&[adam_len], 0.1, &mut rng);
        let mut value = Tensor::randn(&[adam_len], 1.0, &mut rng);
        let mut m = Tensor::zeros(&[adam_len]);
        let mut v = Tensor::zeros(&[adam_len]);
        let ns = best_ns(5, || {
            ops.adam_update(
                value.as_mut_slice(),
                g.as_slice(),
                m.as_mut_slice(),
                v.as_mut_slice(),
                &step,
            )
        });
        let gel = adam_len as f64 / ns as f64;
        cells.push(format!("{gel:.3}"));
        rowop_rows.push(RowOpRow {
            backend: tier,
            op: "adam",
            rows: 1,
            cols: adam_len,
            ns,
            gelems: gel,
        });

        t3.row(&[
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    t3.print();

    // ---- Last gate sample point, then freeze the CI gates — all at
    // 512³, from the dispersed paired rounds (see [`GatePair`]); the
    // sweep rows above are for the trajectory tables, not the gates.
    sample_gates(&mut gate_nn, &mut gate_nt, &mut gate_fma);
    let shape = format!("{GATE_DIM}^3");
    let gates = vec![
        Gate {
            name: "nn_tiled_over_reference",
            op: "nn",
            shape: shape.clone(),
            ratio: gate_nn.ratio(),
            floor: gate_nn.floor,
        },
        Gate {
            name: "nt_tiled_over_reference",
            op: "nt",
            shape: shape.clone(),
            ratio: gate_nt.ratio(),
            floor: gate_nt.floor,
        },
        Gate {
            name: "nn_fma_over_tiled",
            op: "nn",
            shape: shape.clone(),
            ratio: gate_fma.ratio(),
            floor: gate_fma.floor,
        },
    ];
    let gate_flops = 2 * (GATE_DIM as u64).pow(3);
    println!(
        "\npaired @{shape}: nn ref {:.1} / tiled {:.1} GF/s; nt ref {:.1} / tiled {:.1}; \
         nn tiled {:.1} / fma {:.1}",
        gflops(gate_flops, gate_nn.best_f),
        gflops(gate_flops, gate_nn.best_g),
        gflops(gate_flops, gate_nt.best_f),
        gflops(gate_flops, gate_nt.best_g),
        gflops(gate_flops, gate_fma.best_f),
        gflops(gate_flops, gate_fma.best_g),
    );
    println!("-- gates at {shape} (wide kernel: {wide}) --");
    for g in &gates {
        println!(
            "gate {}: {:.2}x (floor {}x) {}",
            g.name,
            g.ratio,
            g.floor,
            if g.ratio >= g.floor { "✓" } else { "✗" }
        );
    }

    // ---- Artifacts.
    let mut artifact = String::from("E26 kernel bench\n\nsquare NN GFLOP/s\n");
    artifact.push_str(&t.render());
    artifact.push_str("\nlayouts\n");
    artifact.push_str(&t2.render());
    artifact.push_str(&format!("\ngates at {shape} (wide kernel: {wide})\n"));
    for g in &gates {
        artifact.push_str(&format!(
            "  {}: {:.2}x (floor {}x)\n",
            g.name, g.ratio, g.floor
        ));
    }
    artifact.push_str("\nrow-op Gelem/s\n");
    artifact.push_str(&t3.render());
    std::fs::create_dir_all("target/e26").expect("create target/e26");
    std::fs::write(TABLE_OUT, &artifact).expect("write kernel table");

    let mut json = String::from("{\n  \"schema\": \"bagualu-kernel-bench/v2\",\n");
    json.push_str(&format!("  \"wide_kernel\": {wide},\n"));
    json.push_str(&format!(
        "  \"roofline_model\": {{\"sustained_fp32_gflops\": {HOST_FP32_GFLOPS}, \
         \"mem_bw_gbps\": {HOST_MEM_BW_GBPS}, \"note\": \"approximate single-core host \
         model; pct_roofline is context, never gated\"}},\n"
    ));
    json.push_str("  \"gates\": [\n");
    for (i, g) in gates.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"op\": \"{}\", \"shape\": \"{}\", \
             \"ratio\": {:.3}, \"floor\": {}}}{}\n",
            g.name,
            g.op,
            g.shape,
            g.ratio,
            g.floor,
            if i + 1 == gates.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"op\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"best_ns\": {}, \"gflops\": {:.3}, \"ai\": {:.2}, \"pct_roofline\": {:.2}}}{}\n",
            r.backend,
            r.op,
            r.m,
            r.k,
            r.n,
            r.ns,
            r.gflops,
            r.ai,
            r.pct_roofline,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"rowops\": [\n");
    for (i, r) in rowop_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"op\": \"{}\", \"rows\": {}, \"cols\": {}, \
             \"best_ns\": {}, \"gelems_per_s\": {:.3}}}{}\n",
            r.backend,
            r.op,
            r.rows,
            r.cols,
            r.ns,
            r.gelems,
            if i + 1 == rowop_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(JSON_OUT, json).expect("write BENCH_kernels.json");

    println!(
        "\nwrote {TABLE_OUT} and {JSON_OUT}\n\n\
         Shape check: the tiled kernels' wins come from memory operations per\n\
         FLOP (register-tiled C, packed panels), so they are per-core and\n\
         survive any runner's thread count. The FMA tier halves the arithmetic\n\
         µops of the same loops — pure issue-width win, same traffic. Half\n\
         rows pay operand quantization up front: O(n^2) against O(n^3)\n\
         compute, so their gap to tiled narrows as shapes grow (the\n\
         reproduction analogue of mixed-precision arithmetic intensity on\n\
         the CPEs). Roofline context uses a documented approximate host\n\
         model, so pct_roofline is comparable across PRs, not across\n\
         machines.\n"
    );

    // Gates last, after artifacts are on disk for post-mortems.
    for g in &gates {
        assert!(
            g.ratio >= g.floor,
            "gate {} failed: {:.2}x < floor {}x at {} (wide kernel: {wide})",
            g.name,
            g.ratio,
            g.floor,
            g.shape
        );
    }
}
