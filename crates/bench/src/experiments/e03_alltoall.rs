//! E3 — all-to-all microbenchmark: pairwise vs hierarchical.
//!
//! Two parts:
//! * **functional**: wall-clock time of the real algorithms over 64 thread
//!   ranks (supernodes of 8), across message sizes;
//! * **projected**: α–β model times at 1k / 8k / 96k nodes, where the
//!   latency asymptotics actually separate the algorithms.

use crate::table::Table;
use bagualu::comm::collectives::{alltoallv, alltoallv_hierarchical};
use bagualu::comm::harness::run_ranks_map;
use bagualu::hw::MachineConfig;
use bagualu::net::cost::CollectiveCost;
use std::time::Instant;

fn time_functional(nranks: usize, supernode: usize, floats_per_pair: usize, hier: bool) -> f64 {
    let reps = 5;
    let times = run_ranks_map(nranks, |c| {
        use bagualu::comm::shm::Communicator;
        let parts: Vec<Vec<f32>> = (0..nranks)
            .map(|d| vec![d as f32; floats_per_pair])
            .collect();
        // Warm up once, then time.
        let _ = if hier {
            alltoallv_hierarchical(&c, parts.clone(), supernode)
        } else {
            alltoallv(&c, parts.clone())
        };
        c.barrier();
        let start = Instant::now();
        for _ in 0..reps {
            let _ = if hier {
                alltoallv_hierarchical(&c, parts.clone(), supernode)
            } else {
                alltoallv(&c, parts.clone())
            };
        }
        c.barrier();
        start.elapsed().as_secs_f64() / reps as f64
    });
    times.iter().cloned().fold(0.0, f64::max)
}

pub fn run() {
    println!("== E3a: functional all-to-all, 64 thread-ranks, supernodes of 8 ==\n");
    let mut t = Table::new(&["floats/pair", "pairwise (ms)", "hierarchical (ms)", "ratio"]);
    for &n in &[64usize, 1024, 16384] {
        let flat = time_functional(64, 8, n, false);
        let hier = time_functional(64, 8, n, true);
        t.row(&[
            format!("{n}"),
            format!("{:.3}", flat * 1e3),
            format!("{:.3}", hier * 1e3),
            format!("{:.2}x", flat / hier),
        ]);
    }
    t.print();
    println!(
        "\n(Thread transport has no per-message wire latency, so the functional run\n\
         mainly validates semantics and volume; the latency advantage appears below.)\n"
    );

    println!("== E3b: projected all-to-all time on the Sunway topology ==\n");
    let mut t = Table::new(&["nodes", "bytes/pair", "pairwise", "hierarchical", "speedup"]);
    for &nodes in &[1024usize, 8192, 96_000] {
        let cc = CollectiveCost::new(MachineConfig::sunway_subset(nodes));
        for &bytes in &[64usize, 1024, 16 * 1024, 256 * 1024] {
            let flat = cc.alltoall_pairwise(nodes, bytes);
            let hier = cc.alltoall_hierarchical(nodes, bytes);
            t.row(&[
                format!("{nodes}"),
                format!("{bytes}"),
                format!("{:.3} ms", flat * 1e3),
                format!("{:.3} ms", hier * 1e3),
                format!("{:.1}x", flat / hier),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: the hierarchical advantage grows with node count (latency\n\
         term Θ(n) → Θ(n/s + s)) and shrinks as per-pair payloads grow (it moves\n\
         every byte twice). The crossover matches the cost model in bagualu-net.\n"
    );
}
