//! Experiment implementations for the BaGuaLu reproduction.
//!
//! Each `e*` module regenerates one table/figure of the (reconstructed)
//! evaluation; the `reproduce` binary dispatches to them. See DESIGN.md for
//! the experiment index and EXPERIMENTS.md for recorded outputs.

pub mod experiments;
pub mod table;

pub use table::Table;
