//! Minimal fixed-width table printer for experiment output.

/// A text table with a header row and aligned columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].ends_with("2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        Table::new(&["a"]).row(&["1".into(), "2".into()]);
    }
}
