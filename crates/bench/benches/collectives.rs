//! Collective-algorithm benchmarks over the shared-memory transport
//! (backing experiment E3's functional half).

use bagualu::comm::collectives::{allreduce, alltoallv, alltoallv_hierarchical, ReduceOp};
use bagualu::comm::harness::run_ranks;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_ring_8ranks");
    for &len in &[1usize << 12, 1 << 16, 1 << 20] {
        g.throughput(Throughput::Bytes((len * 4) as u64));
        g.bench_function(format!("{len}_floats"), |bench| {
            bench.iter(|| {
                run_ranks(8, |c| {
                    use bagualu::comm::shm::Communicator;
                    let data = vec![c.rank() as f32; len];
                    let out = allreduce(&c, data, ReduceOp::Sum);
                    assert_eq!(out[0], 28.0);
                });
            })
        });
    }
    g.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    let nranks = 16;
    let per_pair = 1024usize;
    let mut g = c.benchmark_group("alltoall_16ranks_1k");
    g.throughput(Throughput::Bytes((nranks * per_pair * 4) as u64));
    g.bench_function("pairwise", |bench| {
        bench.iter(|| {
            run_ranks(nranks, |c| {
                use bagualu::comm::shm::Communicator;
                let parts: Vec<Vec<f32>> = (0..nranks)
                    .map(|_| vec![c.rank() as f32; per_pair])
                    .collect();
                alltoallv(&c, parts);
            });
        })
    });
    g.bench_function("hierarchical_sn4", |bench| {
        bench.iter(|| {
            run_ranks(nranks, |c| {
                use bagualu::comm::shm::Communicator;
                let parts: Vec<Vec<f32>> = (0..nranks)
                    .map(|_| vec![c.rank() as f32; per_pair])
                    .collect();
                alltoallv_hierarchical(&c, parts, 4);
            });
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {name = benches; config = quick(); targets = bench_allreduce, bench_alltoall}
criterion_main!(benches);
