//! End-to-end training-step benchmarks: local model and the distributed
//! MoDa step (4 ranks), pairwise vs hierarchical all-to-all.

use bagualu::comm::harness::run_ranks;
use bagualu::model::config::ModelConfig;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::Transformer;
use bagualu::parallel::model_dist::DistTransformer;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::parallel::sync::sync_grads;
use bagualu::tensor::rng::Rng;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn cfg() -> ModelConfig {
    ModelConfig {
        vocab: 128,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 32,
        n_experts: 8,
        ..ModelConfig::tiny()
    }
}

fn bench_local_step(c: &mut Criterion) {
    let cfg = cfg();
    let mut rng = Rng::seed_from(1);
    let mut model = Transformer::new(cfg, &mut rng);
    let tokens: Vec<usize> = (0..4 * 16).map(|i| i % cfg.vocab).collect();
    let targets: Vec<usize> = (0..4 * 16).map(|i| (i + 1) % cfg.vocab).collect();
    let mut g = c.benchmark_group("train_step_local");
    g.throughput(Throughput::Elements(tokens.len() as u64));
    g.bench_function("fwd_bwd_64_tokens", |bench| {
        bench.iter(|| {
            let s = model.train_batch(&tokens, &targets, 4, 16);
            model.zero_grad();
            s
        })
    });
    g.finish();
}

fn bench_dist_step(c: &mut Criterion) {
    let cfg = cfg();
    let mut g = c.benchmark_group("train_step_dist_4ranks");
    g.throughput(Throughput::Elements((4 * 16 * 4) as u64));
    for (name, a2a) in [
        ("pairwise", A2aKind::Pairwise),
        ("hierarchical", A2aKind::Hierarchical { supernode_size: 2 }),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                run_ranks(4, |comm| {
                    use bagualu::comm::shm::Communicator;
                    let mut model = DistTransformer::new(cfg, 7, comm.rank(), 4, a2a);
                    let tokens: Vec<usize> =
                        (0..4 * 16).map(|i| (i + comm.rank()) % cfg.vocab).collect();
                    let targets: Vec<usize> = (0..4 * 16).map(|i| (i + 1) % cfg.vocab).collect();
                    model.train_batch(&tokens, &targets, 4, 16, &comm);
                    sync_grads(&mut model, &comm);
                });
            })
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {name = benches; config = quick(); targets = bench_local_step, bench_dist_step}
criterion_main!(benches);
