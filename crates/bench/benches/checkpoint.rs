//! Checkpoint I/O benchmarks (backing experiment E10).

use bagualu::checkpoint::{load_params, save_params, save_params_sharded};
use bagualu::model::config::ModelConfig;
use bagualu::model::transformer::Transformer;
use bagualu::tensor::rng::Rng;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn model() -> Transformer {
    let cfg = ModelConfig {
        vocab: 512,
        d_model: 128,
        n_heads: 4,
        n_layers: 2,
        d_ff: 256,
        max_seq: 32,
        n_experts: 8,
        ..ModelConfig::tiny()
    };
    Transformer::new(cfg, &mut Rng::seed_from(1))
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut m = model();
    let dir = std::env::temp_dir().join(format!("bagualu-bench-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.bglu");
    let bytes = save_params(&path, &mut m).unwrap();

    let mut g = c.benchmark_group("checkpoint");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("save_monolithic", |bench| {
        bench.iter(|| save_params(&path, &mut m).unwrap())
    });
    g.bench_function("save_sharded_x8", |bench| {
        bench.iter(|| save_params_sharded(dir.join("shards"), &mut m, 8).unwrap())
    });
    g.bench_function("load_monolithic", |bench| {
        bench.iter(|| load_params(&path, &mut m).unwrap())
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {name = benches; config = quick(); targets = bench_checkpoint}
criterion_main!(benches);
