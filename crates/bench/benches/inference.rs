//! Inference benchmarks: KV-cached decoding vs full-window recompute, and
//! tokenizer throughput.

use bagualu::model::config::ModelConfig;
use bagualu::model::transformer::Transformer;
use bagualu::tensor::rng::Rng;
use bagualu::tokenizer::Bpe;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn model() -> Transformer {
    let cfg = ModelConfig {
        vocab: 128,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 64,
        n_experts: 4,
        ..ModelConfig::tiny()
    };
    Transformer::new(cfg, &mut Rng::seed_from(1))
}

fn bench_decode(c: &mut Criterion) {
    let mut m = model();
    let prompt = vec![1usize, 2, 3, 4];
    let n = 32;
    let mut g = c.benchmark_group("generate_32_tokens");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("recompute_window", |b| b.iter(|| m.generate(&prompt, n)));
    g.bench_function("kv_cached", |b| b.iter(|| m.generate_cached(&prompt, n)));
    g.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let corpus = "the quick brown fox jumps over the lazy dog ".repeat(64);
    let bpe = Bpe::train(&corpus, 320);
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(corpus.len() as u64));
    g.bench_function("encode", |b| b.iter(|| bpe.encode(&corpus)));
    let ids = bpe.encode(&corpus);
    g.bench_function("decode", |b| b.iter(|| bpe.decode(&ids)));
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {name = benches; config = quick(); targets = bench_decode, bench_tokenizer}
criterion_main!(benches);
