//! Compute-kernel microbenchmarks: the substitute for the SWDNN kernel
//! table (per-kernel throughput on one rank's compute substrate).

use bagualu::tensor::ops::{gelu, softmax_rows, Activation, ComputeBackend};
use bagualu::tensor::rng::Rng;
use bagualu::tensor::{DType, Tensor};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Every backend over the three GEMM layouts at 256³ — the criterion-grade
/// cross-check of the E26 sweep (which gates on a coarser best-of-N timer).
fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let n = 256usize;
    let a = Tensor::randn(&[n, n], 1.0, &mut rng);
    let b = Tensor::randn(&[n, n], 1.0, &mut rng);
    for cb in [
        ComputeBackend::Reference,
        ComputeBackend::Tiled,
        ComputeBackend::TiledFma,
        ComputeBackend::Half(DType::BF16),
    ] {
        let be = cb.instantiate();
        let mut g = c.benchmark_group(format!("matmul_256/{cb}"));
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_function("nn", |bench| bench.iter(|| be.matmul(&a, &b)));
        g.bench_function("nt", |bench| bench.iter(|| be.matmul_nt(&a, &b)));
        g.bench_function("tn", |bench| bench.iter(|| be.matmul_tn(&a, &b)));
        g.finish();
    }
}

/// The fused epilogue vs the unfused sequence, on the tiled backend.
fn bench_fused_epilogue(c: &mut Criterion) {
    let mut rng = Rng::seed_from(4);
    let n = 256usize;
    let a = Tensor::randn(&[n, n], 1.0, &mut rng);
    let b = Tensor::randn(&[n, n], 1.0, &mut rng);
    let bias: Vec<f32> = (0..n).map(|j| j as f32 * 1e-3).collect();
    let be = ComputeBackend::Tiled.instantiate();
    let mut g = c.benchmark_group("epilogue_256");
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));
    g.bench_function("fused_bias_gelu", |bench| {
        bench.iter(|| be.matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu))
    });
    g.bench_function("unfused_bias_gelu", |bench| {
        bench.iter(|| {
            let mut y = be.matmul(&a, &b);
            y.add_row_broadcast(&bias);
            gelu(&y)
        })
    });
    g.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let x = Tensor::randn(&[512, 1024], 1.0, &mut rng);
    let mut g = c.benchmark_group("elementwise");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("gelu", |bench| bench.iter(|| gelu(&x)));
    g.bench_function("softmax_rows", |bench| bench.iter(|| softmax_rows(&x)));
    g.finish();
}

fn bench_half_conversion(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let x = Tensor::randn(&[1 << 16], 1.0, &mut rng);
    let mut g = c.benchmark_group("half_round_trip");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("f16", |bench| {
        bench.iter(|| {
            let mut y = x.clone();
            y.quantize(DType::F16);
            y
        })
    });
    g.bench_function("bf16", |bench| {
        bench.iter(|| {
            let mut y = x.clone();
            y.quantize(DType::BF16);
            y
        })
    });
    g.finish();
}

/// Pack and unpack timed *separately* per dtype: the half GEMM backends
/// pay one pack per operand and one unpack per output, so the asymmetry
/// between the two directions (f16 rounding vs bf16 truncation; widening
/// is a shift either way) decides which conversion bounds small shapes.
fn bench_pack_unpack(c: &mut Criterion) {
    use bagualu::tensor::{pack_bf16, pack_f16, unpack_bf16, unpack_f16};
    let mut rng = Rng::seed_from(5);
    let x = Tensor::randn(&[1 << 16], 1.0, &mut rng);
    let f16_bits = pack_f16(x.as_slice());
    let bf16_bits = pack_bf16(x.as_slice());
    let mut g = c.benchmark_group("pack_unpack");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("pack_f16", |bench| bench.iter(|| pack_f16(x.as_slice())));
    g.bench_function("unpack_f16", |bench| bench.iter(|| unpack_f16(&f16_bits)));
    g.bench_function("pack_bf16", |bench| bench.iter(|| pack_bf16(x.as_slice())));
    g.bench_function("unpack_bf16", |bench| {
        bench.iter(|| unpack_bf16(&bf16_bits))
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {name = benches; config = quick(); targets = bench_matmul, bench_fused_epilogue, bench_elementwise, bench_half_conversion, bench_pack_unpack}
criterion_main!(benches);
