//! Compute-kernel microbenchmarks: the substitute for the SWDNN kernel
//! table (per-kernel throughput on one rank's compute substrate).

use bagualu::tensor::ops::{gelu, matmul, matmul_nt, matmul_tn, softmax_rows};
use bagualu::tensor::rng::Rng;
use bagualu::tensor::{DType, Tensor};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let n = 256usize;
    let a = Tensor::randn(&[n, n], 1.0, &mut rng);
    let b = Tensor::randn(&[n, n], 1.0, &mut rng);
    let mut g = c.benchmark_group("matmul_256");
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));
    g.bench_function("nn", |bench| bench.iter(|| matmul(&a, &b)));
    g.bench_function("nt", |bench| bench.iter(|| matmul_nt(&a, &b)));
    g.bench_function("tn", |bench| bench.iter(|| matmul_tn(&a, &b)));
    g.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let x = Tensor::randn(&[512, 1024], 1.0, &mut rng);
    let mut g = c.benchmark_group("elementwise");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("gelu", |bench| bench.iter(|| gelu(&x)));
    g.bench_function("softmax_rows", |bench| bench.iter(|| softmax_rows(&x)));
    g.finish();
}

fn bench_half_conversion(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let x = Tensor::randn(&[1 << 16], 1.0, &mut rng);
    let mut g = c.benchmark_group("half_round_trip");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("f16", |bench| {
        bench.iter(|| {
            let mut y = x.clone();
            y.quantize(DType::F16);
            y
        })
    });
    g.bench_function("bf16", |bench| {
        bench.iter(|| {
            let mut y = x.clone();
            y.quantize(DType::BF16);
            y
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {name = benches; config = quick(); targets = bench_matmul, bench_elementwise, bench_half_conversion}
criterion_main!(benches);
