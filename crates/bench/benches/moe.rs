//! MoE component benchmarks: gating policies and the full local layer
//! (backing experiments E4/E12's cost intuition).

use bagualu::model::moe::{Gate, GateKind, MoELayer};
use bagualu::tensor::rng::Rng;
use bagualu::tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const D: usize = 64;
const EXPERTS: usize = 32;
const TOKENS: usize = 1024;

fn bench_gates(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let x = Tensor::randn(&[TOKENS, D], 1.0, &mut rng);
    let mut g = c.benchmark_group("gate_forward_1k_tokens");
    g.throughput(Throughput::Elements(TOKENS as u64));
    for (name, kind) in [
        ("top1", GateKind::Top1),
        ("top2", GateKind::Top2),
        ("balanced", GateKind::Balanced),
    ] {
        let mut gate = Gate::new("g", D, EXPERTS, kind, 1.25, 0.01, &mut rng);
        g.bench_function(name, |bench| bench.iter(|| gate.forward(&x)));
    }
    g.finish();
}

fn bench_moe_layer(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let mut layer = MoELayer::new("m", D, 4 * D, EXPERTS, GateKind::Top2, 1.25, 0.01, &mut rng);
    let x = Tensor::randn(&[TOKENS, D], 1.0, &mut rng);
    let mut g = c.benchmark_group("moe_layer_1k_tokens");
    g.throughput(Throughput::Elements(TOKENS as u64));
    g.bench_function("forward", |bench| bench.iter(|| layer.forward(&x)));
    g.bench_function("forward_backward", |bench| {
        bench.iter(|| {
            let y = layer.forward(&x);
            layer.backward(&y)
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {name = benches; config = quick(); targets = bench_gates, bench_moe_layer}
criterion_main!(benches);
