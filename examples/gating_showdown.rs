//! Gate-policy showdown: train the same model with top-1, top-2, and
//! balance-aware greedy routing on skewed data, and watch loss, expert
//! imbalance, and token drops evolve together.
//!
//! ```text
//! cargo run -p bagualu --release --example gating_showdown
//! ```

use bagualu::data::TokenDistribution;
use bagualu::model::config::ModelConfig;
use bagualu::model::moe::GateKind;
use bagualu::trainer::{TrainConfig, TrainReport, Trainer};

const STEPS: usize = 120;

fn train(gate: GateKind) -> TrainReport {
    let model = ModelConfig {
        n_experts: 8,
        gate,
        capacity_factor: 1.25, // tight capacity: routing quality matters
        ..ModelConfig::tiny()
    };
    Trainer::new(TrainConfig {
        model,
        nranks: 2,
        batch_per_rank: 4,
        seq: 8,
        steps: STEPS,
        lr: 1e-2,
        seed: 5,
        data: TokenDistribution::Zipf(1.0),
        ..Default::default()
    })
    .run()
}

fn main() {
    println!("training 3 gate policies on zipf-1.0 data (8 experts, cf 1.25)…\n");
    let runs = [
        ("top-1 (switch)", train(GateKind::Top1)),
        ("top-2 (gshard)", train(GateKind::Top2)),
        ("balanced greedy", train(GateKind::Balanced)),
    ];

    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>10}",
        "gate", "first loss", "final loss", "avg imbalance", "avg drops"
    );
    for (name, r) in &runs {
        let imb: f64 = r.imbalance_curve.iter().sum::<f64>() / STEPS as f64;
        let drops: f64 = r.drop_curve.iter().sum::<f64>() / STEPS as f64;
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>12.2} {:>9.1}%",
            name,
            r.loss_curve[0],
            r.final_loss(),
            imb,
            drops * 100.0
        );
    }

    println!("\nloss trajectories (every 20 steps):");
    print!("{:>6}", "step");
    for (name, _) in &runs {
        print!(" {name:>16}");
    }
    println!();
    for s in (0..STEPS).step_by(20).chain([STEPS - 1]) {
        print!("{s:>6}");
        for (_, r) in &runs {
            print!(" {:>16.4}", r.loss_curve[s]);
        }
        println!();
    }

    println!(
        "\nReading: under skew, top-1/top-2 drop tokens at tight capacity while the\n\
         balance-aware gate keeps every token flowing — the imbalance and drop\n\
         columns show the trade the system-level gating design is making."
    );
}
