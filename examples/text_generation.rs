//! Train a small MoE decoder on a synthetic grammar and sample from it —
//! the "did we actually build a language model?" sanity example.
//!
//! The grammar: `next(t) = (5·t + 3) mod vocab`, a bijective successor map.
//! After training, greedy generation should walk the map.
//!
//! ```text
//! cargo run -p bagualu --release --example text_generation
//! ```

use bagualu::data::{SyntheticLM, TokenDistribution};
use bagualu::model::config::ModelConfig;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::Transformer;
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::optim::schedule::LrSchedule;
use bagualu::tensor::rng::Rng;

fn main() {
    let cfg = ModelConfig {
        vocab: 32,
        ..ModelConfig::tiny()
    };
    let mut rng = Rng::seed_from(11);
    let mut model = Transformer::new(cfg, &mut rng);
    let task = SyntheticLM::new(cfg.vocab, TokenDistribution::Uniform, 11);
    let mut opt = Adam::new(AdamConfig {
        lr: 0.0,
        ..Default::default()
    });
    let schedule = LrSchedule::WarmupCosine {
        peak: 2e-2,
        warmup: 20,
        total: 400,
        floor: 1e-3,
    };

    println!(
        "training a {}-param MoE decoder on the synthetic grammar…",
        model.num_params()
    );
    for step in 0..400 {
        let (tokens, targets) = task.batch(4, 8, 0, step);
        let stats = model.train_batch(&tokens, &targets, 4, 8);
        opt.set_lr(schedule.at(step));
        opt.step(&mut model);
        model.zero_grad();
        if step % 80 == 0 {
            println!(
                "  step {step:>3}: loss {:.4} (lr {:.4})",
                stats.ce_loss,
                schedule.at(step)
            );
        }
    }

    println!("\ngreedy generation (prompt → continuation):");
    let mut correct = 0;
    let mut total = 0;
    for start in [1usize, 7, 19] {
        let prompt = vec![start, task.target_of(start)];
        let out = model.generate(&prompt, 8);
        let pretty: Vec<String> = out.iter().map(|t| t.to_string()).collect();
        // Count how many generated transitions follow the grammar.
        let follow = out
            .windows(2)
            .filter(|w| w[1] == task.target_of(w[0]))
            .count();
        correct += follow;
        total += out.len() - 1;
        println!(
            "  [{}] → {}  ({follow}/{} transitions on-grammar)",
            prompt
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            pretty.join(" "),
            out.len() - 1
        );
    }
    let acc = correct as f64 / total as f64;
    println!("\noverall on-grammar transition rate: {:.0}%", acc * 100.0);
    assert!(acc > 0.8, "generation quality too low: {acc}");
    println!("ok: the trained decoder reproduces the grammar it was taught.");
}
