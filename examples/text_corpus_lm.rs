//! End-to-end *text* language modelling: train a byte-pair tokenizer on a
//! corpus, train an MoE decoder (with RoPE) on the token stream, and decode
//! a continuation back to text.
//!
//! ```text
//! cargo run -p bagualu --release --example text_corpus_lm
//! ```

use bagualu::model::config::ModelConfig;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::Transformer;
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::tensor::rng::Rng;
use bagualu::tokenizer::Bpe;

const CORPUS: &str = "the brain has a hundred trillion synapses. \
training a model with a hundred trillion parameters needs a hundred \
thousand nodes. the experts hold the parameters and the tokens travel \
to the experts. the gate sends the tokens and the experts answer. \
the brain has a hundred trillion synapses and the machine has forty \
million cores. the tokens travel and the gate learns where to send them. ";

const SEQ: usize = 16;
const BATCH: usize = 8;

fn main() {
    // 1. Tokenizer.
    let bpe = Bpe::train(CORPUS, 320);
    let stream = bpe.encode(CORPUS);
    println!(
        "tokenizer: vocab {} | corpus {} bytes → {} tokens ({:.2} bytes/token)",
        bpe.vocab_size(),
        CORPUS.len(),
        stream.len(),
        bpe.bytes_per_token(CORPUS)
    );
    assert!(
        stream.len() > SEQ * 2,
        "corpus too short after tokenization"
    );

    // 2. Model: RoPE decoder with a small expert pool.
    let cfg = ModelConfig {
        vocab: bpe.vocab_size(),
        d_model: 48,
        n_heads: 4,
        n_layers: 2,
        d_ff: 96,
        max_seq: 64,
        n_experts: 4,
        rope: true,
        ..ModelConfig::tiny()
    };
    let mut rng = Rng::seed_from(2026);
    let mut model = Transformer::new(cfg, &mut rng);
    let mut opt = Adam::new(AdamConfig {
        lr: 3e-3,
        ..Default::default()
    });
    println!(
        "model: {} parameters (RoPE, {} experts)\n",
        model.num_params(),
        cfg.n_experts
    );

    // 3. Train on random windows of the real token stream.
    let mut data_rng = Rng::seed_from(7);
    for step in 0..600 {
        let mut tokens = Vec::with_capacity(BATCH * SEQ);
        let mut targets = Vec::with_capacity(BATCH * SEQ);
        for _ in 0..BATCH {
            let start = data_rng.below(stream.len() - SEQ - 1);
            tokens.extend_from_slice(&stream[start..start + SEQ]);
            targets.extend_from_slice(&stream[start + 1..start + SEQ + 1]);
        }
        let stats = model.train_batch(&tokens, &targets, BATCH, SEQ);
        opt.step(&mut model);
        model.zero_grad();
        if step % 100 == 0 {
            println!("step {step:>3}: loss {:.4}", stats.ce_loss);
        }
    }

    // 4. Decode a continuation of a corpus prefix.
    let prompt_text = "the brain has";
    let prompt = bpe.encode(prompt_text);
    let out = model.generate_cached(&prompt, 24.min(cfg.max_seq - prompt.len()));
    let text = bpe.decode(&out);
    println!("\nprompt: {prompt_text:?}");
    println!("continuation: {text:?}");

    // The model memorized a tiny corpus: the continuation must reuse corpus
    // vocabulary (every decoded word appears in the training text).
    let known: std::collections::HashSet<&str> = CORPUS.split_whitespace().collect();
    let words: Vec<&str> = text.split_whitespace().collect();
    let on_corpus = words.iter().filter(|w| known.contains(*w)).count();
    println!(
        "on-corpus words: {on_corpus}/{} ({:.0}%)",
        words.len(),
        100.0 * on_corpus as f64 / words.len() as f64
    );
    assert!(
        on_corpus as f64 >= words.len() as f64 * 0.6,
        "generation wandered off-corpus"
    );
    println!("ok: tokenizer → MoE training → decoding all work on real text.");
}
