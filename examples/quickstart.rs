//! Quickstart: train a tiny mixture-of-experts language model with MoDa
//! hybrid parallelism on 4 thread-ranks.
//!
//! ```text
//! cargo run -p bagualu --release --example quickstart
//! ```

use bagualu::data::TokenDistribution;
use bagualu::model::config::ModelConfig;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::tensor::DType;
use bagualu::trainer::{TrainConfig, Trainer};

fn main() {
    // A laptop-scale MoE decoder: 2 blocks, 4 experts, top-2 routing.
    let model = ModelConfig::tiny();
    println!(
        "model: {} params ({} experts × {} MoE blocks), vocab {}",
        model.count_params(),
        model.n_experts,
        model.n_moe_blocks(),
        model.vocab
    );

    let cfg = TrainConfig {
        model,
        nranks: 4,         // data-parallel × expert-parallel width
        batch_per_rank: 4, // sequences per rank per step
        seq: 8,
        steps: 100,
        lr: 1e-2,
        dtype: DType::BF16, // mixed precision with fp32 masters
        a2a: A2aKind::Hierarchical { supernode_size: 2 },
        data: TokenDistribution::Zipf(0.8),
        ..Default::default()
    };

    println!(
        "training on {} ranks, {} tokens/step, hierarchical all-to-all…\n",
        cfg.nranks,
        cfg.nranks * cfg.batch_per_rank * cfg.seq
    );
    let report = Trainer::new(cfg).run();

    println!("step   loss     aux      imbalance");
    for s in (0..report.loss_curve.len()).step_by(10) {
        println!(
            "{s:>4}   {:>6.4}   {:>6.4}   {:>5.2}",
            report.loss_curve[s], report.aux_curve[s], report.imbalance_curve[s]
        );
    }
    println!(
        "\nfinal loss {:.4} | {:.0} tokens/s | {} optimizer steps skipped",
        report.final_loss(),
        report.tokens_per_sec,
        report.skipped_steps
    );
    assert!(
        report.final_loss() < report.loss_curve[0],
        "the model must learn"
    );
    println!("ok: loss decreased — the full MoDa pipeline works end to end.");
}
