//! A fuller training workflow: train an MoE language model, checkpoint it,
//! corrupt the live weights, restore, and verify the model still predicts.
//!
//! Demonstrates the pieces a downstream user composes by hand when the
//! packaged [`Trainer`] is too rigid: the distributed model, explicit
//! optimizer, gradient sync, and sharded checkpointing.
//!
//! ```text
//! cargo run -p bagualu --release --example moe_language_model
//! ```

use bagualu::checkpoint::{load_params_sharded, save_params_sharded};
use bagualu::comm::harness::run_ranks_map;
use bagualu::comm::shm::Communicator;
use bagualu::data::{SyntheticLM, TokenDistribution};
use bagualu::model::config::ModelConfig;
use bagualu::model::loss::{cross_entropy, perplexity};
use bagualu::model::param::HasParams;
use bagualu::optim::adam::AdamConfig;
use bagualu::optim::mixed::MixedPrecision;
use bagualu::parallel::model_dist::DistTransformer;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::parallel::sync::sync_grads;
use bagualu::tensor::DType;

const NRANKS: usize = 2;
const BATCH: usize = 4;
const SEQ: usize = 8;
const STEPS: usize = 150;

fn main() {
    let model_cfg = ModelConfig {
        n_experts: 8,
        ..ModelConfig::tiny()
    };
    let task = SyntheticLM::new(model_cfg.vocab, TokenDistribution::Zipf(0.8), 77);
    let ckpt_dir = std::env::temp_dir().join(format!("bagualu-example-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let ckpt = &ckpt_dir;
    let task_ref = &task;

    let finals = run_ranks_map(NRANKS, move |comm| {
        let rank = comm.rank();
        let mut model = DistTransformer::new(model_cfg, 2024, rank, NRANKS, A2aKind::Pairwise);
        let mut opt = MixedPrecision::new(
            AdamConfig {
                lr: 1e-2,
                ..Default::default()
            },
            DType::BF16,
        );
        opt.quantize_model(&mut model);

        // ---- Train.
        let mut last_loss = f32::NAN;
        for step in 0..STEPS {
            let (tokens, targets) = task_ref.batch(BATCH, SEQ, rank, step);
            let logits = model.forward(&tokens, BATCH, SEQ, &comm);
            let (loss, mut dlogits) = cross_entropy(&logits, &targets);
            dlogits.scale(opt.loss_scale());
            model.backward(&dlogits, &comm);
            sync_grads(&mut model, &comm);
            opt.step(&mut model);
            model.zero_grad();
            last_loss = loss;
            if rank == 0 && step % 25 == 0 {
                println!(
                    "step {step:>4}: loss {loss:.4} (ppl {:.2})",
                    perplexity(loss)
                );
            }
        }

        // ---- Checkpoint this rank's shard (dense params are identical on
        // every rank; experts are disjoint, so shards together hold the
        // complete model exactly once per expert).
        let dir = ckpt.join(format!("rank{rank}"));
        save_params_sharded(&dir, &mut model, 2).unwrap();

        // ---- Sabotage the live weights, restore, verify.
        model.visit_params(&mut |p| p.value.fill(0.0));
        load_params_sharded(&dir, &mut model, 2).unwrap();
        let (tokens, targets) = task_ref.batch(BATCH, SEQ, rank, 0);
        let logits = model.forward(&tokens, BATCH, SEQ, &comm);
        let (restored_loss, _) = cross_entropy(&logits, &targets);
        (last_loss, restored_loss)
    });

    let (train_loss, restored_loss) = finals[0];
    println!("\nfinal training loss: {train_loss:.4}");
    println!("loss after zeroing weights and restoring the checkpoint: {restored_loss:.4}");
    assert!(
        restored_loss < 1.0,
        "restored model must still predict (got {restored_loss})"
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    println!("ok: trained, checkpointed, restored, and verified.");
}
