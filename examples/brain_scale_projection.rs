//! Project a brain-scale training run onto the full 37-million-core
//! machine model: what step time, throughput, and sustained FLOPS a
//! configuration would achieve, and what the naive collectives would cost.
//!
//! ```text
//! cargo run -p bagualu --release --example brain_scale_projection            # 174T preset
//! cargo run -p bagualu --release --example brain_scale_projection -- 14.5t 49152
//! ```

use bagualu::hw::Precision;
use bagualu::metrics::{format_flops, format_params, format_si};
use bagualu::model::config::ModelConfig;
use bagualu::perfmodel::{project, PerfInput};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = match args.first().map(|s| s.as_str()) {
        None | Some("174t") => ModelConfig::bagualu_174t(),
        Some("14.5t") => ModelConfig::bagualu_14_5t(),
        Some("1.93t") => ModelConfig::bagualu_1_93t(),
        Some(other) => {
            eprintln!("unknown preset {other}; use 1.93t | 14.5t | 174t");
            std::process::exit(2);
        }
    };
    let nodes: usize = args
        .get(1)
        .map(|s| s.parse().expect("node count"))
        .unwrap_or(96_000);

    println!(
        "model: {} parameters ({} experts × {} MoE blocks)",
        format_params(model.count_params()),
        model.n_experts,
        model.n_moe_blocks()
    );
    println!("machine: {nodes} nodes = {} cores\n", nodes * 390);

    for (label, input) in [
        (
            "hierarchical collectives, half precision",
            PerfInput::sunway_nodes(model, nodes),
        ),
        (
            "naive collectives, half precision",
            PerfInput {
                hierarchical_a2a: false,
                hierarchical_allreduce: false,
                ..PerfInput::sunway_nodes(model, nodes)
            },
        ),
        (
            "hierarchical collectives, fp32",
            PerfInput {
                precision: Precision::FP32,
                ..PerfInput::sunway_nodes(model, nodes)
            },
        ),
    ] {
        let p = project(&input);
        let b = p.breakdown;
        println!("— {label} —");
        println!(
            "  step {:.2}s = dense {:.2}s + gate {:.2}s + experts {:.2}s + a2a {:.2}s + allreduce {:.2}s",
            p.step_time, b.dense_compute, b.gate_compute, b.expert_compute, b.a2a, b.allreduce
        );
        println!(
            "  throughput {} | sustained {} ({:.1}% of sustained peak, {:.0}% comm)\n",
            format_si(p.tokens_per_sec, "tok/s"),
            format_flops(p.sustained_flops),
            100.0 * p.efficiency,
            100.0 * b.comm_fraction()
        );
    }
    println!(
        "The hierarchical/naive gap above is the system's core claim: at 100k-\n\
         endpoint scale, topology-aware collectives are the difference between an\n\
         EFLOPS-class machine and one that spends its time in message latency."
    );
}
