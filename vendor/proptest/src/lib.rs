//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the proptest API its test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies for the primitive numeric types,
//! * `any` for full-range primitives,
//! * string strategies from a small regex subset (char classes, groups,
//!   `{lo,hi}` repetition, `\PC`),
//! * [`collection::vec`], tuple strategies, and `prop_map`.
//!
//! Differences from real proptest: case generation is **deterministic**
//! (seeded from the test name, overridable via `PROPTEST_SEED`), and there
//! is **no shrinking** — a failing case panics with the generated inputs
//! left to the assertion message. For the property suites in this
//! workspace, which assert exact or tolerance-based algebraic identities,
//! that trade keeps CI runs reproducible at a fraction of the complexity.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run each property case; a panic in the body fails the test with the
/// case index and the name of the property in the message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Reject the current case when the assumption fails. The shim simply
/// skips to the next case (expanding to `continue` in the case loop), so
/// heavy rejection rates silently shrink the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert a property; panics (failing the current case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality of two expressions within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality of two expressions within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(a in 3usize..17, b in -5i32..5, x in 0.25f32..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (1usize..4, 10u64..20),
            mapped in (0usize..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
            prop_assert_eq!(mapped % 2, 0);
        }

        #[test]
        fn regex_classes_generate_members(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn regex_groups_repeat(s in "x(\\.y){1,3}") {
            prop_assert!(s.starts_with('x'));
            let tail = &s[1..];
            prop_assert_eq!(tail.len() % 2, 0);
            prop_assert!(tail.len() >= 2 && tail.len() <= 6);
        }

        #[test]
        fn non_control_class_is_printable(s in "\\PC{0,20}") {
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn any_covers_u16(bits in any::<u16>()) {
            let _roundtrip = u16::from_le_bytes(bits.to_le_bytes());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("stable");
        let mut b = crate::test_runner::TestRng::for_test("stable");
        for _ in 0..32 {
            assert_eq!(
                (0usize..1000).generate(&mut a),
                (0usize..1000).generate(&mut b)
            );
        }
    }
}
