//! The `Strategy` trait and the primitive strategy implementations.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate from `self`, then from the strategy it yields.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies compose by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------- numeric ranges

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ------------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ------------------------------------------------------------------ any::<T>

/// Full-range generation for primitives, `any::<T>()` in proptest syntax.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

// ------------------------------------------------------------- string regexes

/// A `&str` is a strategy generating strings matching it as a regex
/// (subset; see [`crate::string`]).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
