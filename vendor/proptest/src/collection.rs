//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// How many elements a collection strategy may produce.
pub trait SizeRange {
    /// Pick a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Half-open, as in proptest: `1..12` yields lengths 1..=11.
impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// `Vec<T>` strategy with element strategy `element` and length in `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn fixed_size_vec() {
        let mut rng = TestRng::for_test("fixed");
        let v = vec(0u32..100, 7usize).generate(&mut rng);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn nested_vecs() {
        let mut rng = TestRng::for_test("nested");
        for _ in 0..50 {
            let v = vec(vec(1usize..8, 1..3), 1..12).generate(&mut rng);
            assert!((1..12).contains(&v.len()));
            for inner in &v {
                assert!((1..3).contains(&inner.len()));
                assert!(inner.iter().all(|&x| (1..8).contains(&x)));
            }
        }
    }
}
