//! Deterministic case generation: config + the per-test RNG.

/// Configuration accepted by `#![proptest_config(..)]`. Only `cases` is
/// meaningful here; the other fields exist so struct-update spellings from
/// real proptest keep compiling.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted but unused (no shrinking in the shim).
    pub max_shrink_iters: u32,
    /// Accepted but unused (no failure persistence files in the shim).
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

/// xoshiro256++ seeded from the test name, so every property gets a
/// distinct but stable stream. `PROPTEST_SEED` perturbs all streams at
/// once for exploratory runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Stable stream for a named property.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, folded with the optional env seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.rotate_left(17);
            }
        }
        TestRng::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `f64` on `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
