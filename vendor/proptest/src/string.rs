//! String generation from a small regex subset.
//!
//! Supported syntax — enough for the patterns in this workspace's tests:
//!
//! * literal characters,
//! * escaped literals (`\.`, `\[`, ...),
//! * `\PC` — any printable (non-control) character, drawn from a mixed
//!   ASCII/Unicode pool,
//! * character classes `[...]` with ranges (`[a-z]`, `[ -~]`) and literal
//!   members (`[a-z ]`),
//! * groups `(...)`,
//! * repetition `{n}` and `{lo,hi}` (inclusive bounds, applied to the
//!   preceding atom).
//!
//! Anything outside this subset panics with the offending pattern so a new
//! test pattern fails loudly instead of generating garbage.

use crate::test_runner::TestRng;

/// Generate a string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_seq(&mut pattern.chars().collect::<Vec<_>>().as_slice(), pattern);
    let mut out = String::new();
    emit_seq(&atoms, rng, &mut out);
    out
}

enum Atom {
    Lit(char),
    /// Printable non-control (`\PC`).
    Printable,
    /// Char class: explicit member list, pre-expanded from ranges.
    Class(Vec<char>),
    Group(Vec<Repeated>),
}

struct Repeated {
    atom: Atom,
    lo: usize,
    hi: usize,
}

/// Parse a sequence of repeated atoms until end of input or an
/// unbalanced `)` (left for the caller).
fn parse_seq(input: &mut &[char], pattern: &str) -> Vec<Repeated> {
    let mut out = Vec::new();
    while let Some(&c) = input.first() {
        if c == ')' {
            break;
        }
        *input = &input[1..];
        let atom = match c {
            '\\' => {
                let e = take(input, pattern);
                if e == 'P' {
                    let k = take(input, pattern);
                    assert_eq!(k, 'C', "unsupported \\P{k} in regex {pattern:?}");
                    Atom::Printable
                } else {
                    Atom::Lit(e)
                }
            }
            '[' => Atom::Class(parse_class(input, pattern)),
            '(' => {
                let inner = parse_seq(input, pattern);
                let close = take(input, pattern);
                assert_eq!(close, ')', "unbalanced group in regex {pattern:?}");
                Atom::Group(inner)
            }
            '{' | '}' | '*' | '+' | '?' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?}")
            }
            other => Atom::Lit(other),
        };
        let (lo, hi) = parse_repeat(input, pattern);
        out.push(Repeated { atom, lo, hi });
    }
    out
}

/// Parse an optional trailing `{n}` / `{lo,hi}`; default is exactly once.
fn parse_repeat(input: &mut &[char], pattern: &str) -> (usize, usize) {
    if input.first() != Some(&'{') {
        return (1, 1);
    }
    *input = &input[1..];
    let mut body = String::new();
    loop {
        let c = take(input, pattern);
        if c == '}' {
            break;
        }
        body.push(c);
    }
    let parse = |s: &str| -> usize {
        s.parse()
            .unwrap_or_else(|_| panic!("bad repeat count {s:?} in regex {pattern:?}"))
    };
    match body.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => {
            let n = parse(&body);
            (n, n)
        }
    }
}

/// Parse the body of a `[...]` class (after the `[`), expanding ranges.
fn parse_class(input: &mut &[char], pattern: &str) -> Vec<char> {
    let mut members = Vec::new();
    loop {
        let c = take(input, pattern);
        match c {
            ']' => break,
            '\\' => members.push(take(input, pattern)),
            _ => {
                // `x-y` range, unless `-` is last before `]`.
                if input.first() == Some(&'-') && input.get(1) != Some(&']') {
                    *input = &input[1..];
                    let end = take(input, pattern);
                    assert!(c <= end, "inverted class range in regex {pattern:?}");
                    for u in c as u32..=end as u32 {
                        if let Some(ch) = char::from_u32(u) {
                            members.push(ch);
                        }
                    }
                } else {
                    members.push(c);
                }
            }
        }
    }
    assert!(!members.is_empty(), "empty char class in regex {pattern:?}");
    members
}

fn take(input: &mut &[char], pattern: &str) -> char {
    let c = *input
        .first()
        .unwrap_or_else(|| panic!("truncated regex {pattern:?}"));
    *input = &input[1..];
    c
}

fn emit_seq(atoms: &[Repeated], rng: &mut TestRng, out: &mut String) {
    for rep in atoms {
        let n = if rep.lo == rep.hi {
            rep.lo
        } else {
            rep.lo + rng.below((rep.hi - rep.lo + 1) as u64) as usize
        };
        for _ in 0..n {
            emit_atom(&rep.atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Printable => out.push(printable(rng)),
        Atom::Class(members) => out.push(members[rng.below(members.len() as u64) as usize]),
        Atom::Group(inner) => emit_seq(inner, rng, out),
    }
}

/// A printable non-control char: mostly ASCII, occasionally wider Unicode
/// so multi-byte handling gets exercised.
fn printable(rng: &mut TestRng) -> char {
    match rng.below(8) {
        0 => {
            // Latin-1 supplement and some BMP letters/symbols.
            const POOL: &[char] = &[
                'é', 'ß', 'Ω', 'π', 'λ', '中', '文', '→', '±', '≈', '∑', '日',
            ];
            POOL[rng.below(POOL.len() as u64) as usize]
        }
        _ => char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn dotted_identifier_pattern() {
        let mut rng = TestRng::for_test("dotted");
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,8}(\\.[a-z]{1,8}){0,2}", &mut rng);
            for part in s.split('.') {
                assert!(
                    (1..=8).contains(&part.len()) && part.chars().all(|c| c.is_ascii_lowercase()),
                    "bad part {part:?} in {s:?}"
                );
            }
            assert!(s.split('.').count() <= 3);
        }
    }

    #[test]
    fn printable_ascii_range_class() {
        let mut rng = TestRng::for_test("ascii");
        for _ in 0..100 {
            let s = generate_matching("[ -~]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn class_with_trailing_literal_space() {
        let mut rng = TestRng::for_test("space");
        let s = generate_matching("[a-z ]{50}", &mut rng);
        assert_eq!(s.len(), 50);
        assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
    }

    #[test]
    fn non_control_escape() {
        let mut rng = TestRng::for_test("pc");
        for _ in 0..100 {
            let s = generate_matching("\\PC{0,80}", &mut rng);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
