//! Offline stand-in for the `rayon` crate.
//!
//! Implements the one parallel-iterator shape the tensor kernels use —
//! `slice.par_chunks_mut(n).enumerate().for_each(f)` — on top of
//! `std::thread::scope`. Each call partitions the chunk list across up to
//! `current_num_threads()` scoped threads; chunks are disjoint `&mut`
//! slices so the closure runs without synchronization, exactly as with
//! real rayon. No global pool: spawn cost is paid per call, which is
//! acceptable at the matrix sizes this workspace parallelizes (the small
//! ones take the sequential path before ever reaching here).

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub mod prelude {
    pub use crate::slice::ParallelSliceMut;
}

pub mod slice {
    /// Extension trait: parallel mutable chunking of slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "par_chunks_mut: zero chunk size");
            ParChunksMut {
                chunks: self.chunks_mut(chunk_size).collect(),
            }
        }
    }

    /// Parallel iterator over disjoint mutable chunks.
    pub struct ParChunksMut<'a, T> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        pub fn enumerate(self) -> ParEnumerate<'a, T> {
            ParEnumerate {
                items: self.chunks.into_iter().enumerate().collect(),
            }
        }

        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Sync,
        {
            run_parallel(self.chunks, &f);
        }
    }

    /// Enumerated parallel iterator.
    pub struct ParEnumerate<'a, T> {
        items: Vec<(usize, &'a mut [T])>,
    }

    impl<'a, T: Send> ParEnumerate<'a, T> {
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Sync,
        {
            run_parallel(self.items, &f);
        }
    }

    /// Split `items` into contiguous batches, one scoped thread per batch.
    fn run_parallel<I: Send, F: Fn(I) + Sync>(mut items: Vec<I>, f: &F) {
        let nthreads = super::current_num_threads().min(items.len()).max(1);
        if nthreads <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let per = items.len().div_ceil(nthreads);
        std::thread::scope(|s| {
            while !items.is_empty() {
                let take = per.min(items.len());
                let batch: Vec<I> = items.drain(..take).collect();
                s.spawn(move || {
                    for item in batch {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_slice_once() {
        let mut v = vec![0u64; 1000];
        v.as_mut_slice()
            .par_chunks_mut(7)
            .enumerate()
            .for_each(|(_i, chunk)| {
                for x in chunk.iter_mut() {
                    *x += 1;
                }
            });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_indices_match_offsets() {
        let mut v = vec![0usize; 64];
        v.as_mut_slice()
            .par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| {
                for x in chunk.iter_mut() {
                    *x = i;
                }
            });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 10);
        }
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<f32> = Vec::new();
        v.as_mut_slice()
            .par_chunks_mut(4)
            .enumerate()
            .for_each(|_| panic!("no chunks"));
    }
}
