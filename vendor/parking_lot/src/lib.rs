//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `parking_lot` API it actually uses —
//! `Mutex` (panic-free `lock()` returning a guard directly) and `Condvar`
//! (`wait` taking `&mut MutexGuard`) — implemented over `std::sync`.
//! Lock poisoning is swallowed, matching `parking_lot` semantics: a
//! panicking critical section does not poison the lock for other threads.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never panics on a
    /// poisoned lock; the poison flag is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard; the `Option` dance lets `Condvar::wait` take the guard by
/// `&mut` (parking_lot style) while std's condvar consumes it by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Condition variable with `parking_lot`'s `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Timed wait with `parking_lot`'s signature: blocks for at most
    /// `timeout` and reports whether the wait timed out (spurious wakeups
    /// are possible either way, exactly like the real crate).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Result of [`Condvar::wait_for`], mirroring `parking_lot`'s type.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock over `std::sync::RwLock`, same non-poisoning story.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notify() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
