//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the `rand 0.8` API it uses: the `RngCore` / `SeedableRng` /
//! `Rng` traits and `rngs::StdRng`. The generator is xoshiro256++ seeded
//! through SplitMix64 — not the upstream ChaCha12, so *values* differ from
//! real `rand`, but every consumer in this workspace only relies on
//! determinism and statistical quality, never on exact streams.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full value range (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span/2^64 — negligible for every span in
                // this workspace (all ≪ 2^32).
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let collisions = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f32>() as f64).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
