//! Offline stand-in for the `criterion` crate.
//!
//! Implements the builder/group/bench-function surface the workspace's
//! benches use, timing each benchmark with `std::time::Instant` and
//! printing a one-line median + throughput summary. No statistical
//! analysis, plots, or baselines — the benches here are smoke/inspection
//! tools, and this keeps them runnable without crates.io access.
//!
//! The harness also runs (and instantly completes) under `cargo test`,
//! which builds `harness = false` bench targets with `--test`: any CLI
//! argument beginning with `--` that we don't recognize switches the run
//! into list/no-op mode, mirroring real criterion's behavior.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput annotation; scales the printed rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// True when invoked by `cargo test` (e.g. with `--test`): skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args()
            .skip(1)
            .any(|a| a == "--test" || a == "--list" || a.starts_with("--format"));
        Criterion {
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name: String = id.into();
        run_benchmark(self, &name, None, f);
        self
    }

    /// Called by `criterion_main!` after all groups; kept for parity.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        run_benchmark(self.criterion, &full, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(c: &mut Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if c.test_mode {
        // Single untimed iteration so `cargo test` still exercises the code.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }

    // Warm-up doubles as calibration: find an iteration count whose total
    // runtime fills one sample's share of the measurement window.
    let mut iters: u64 = 1;
    let warm_deadline = Instant::now() + c.warm_up_time;
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
        if Instant::now() >= warm_deadline {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 20);
    }
    let per_sample = c.measurement_time / c.sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(" thrpt: {}/s", human_bytes(n as f64 / median.as_secs_f64()))
        }
        Throughput::Elements(n) => {
            format!(
                " thrpt: {} elem/s",
                human_count(n as f64 / median.as_secs_f64())
            )
        }
    });
    println!(
        "{name:<40} time: [{}]{}",
        human_time(median),
        rate.unwrap_or_default()
    );
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_bytes(b: f64) -> String {
    if b < 1024.0 {
        format!("{b:.0} B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else if b < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    }
}

fn human_count(x: f64) -> String {
    if x < 1_000.0 {
        format!("{x:.0}")
    } else if x < 1_000_000.0 {
        format!("{:.1}K", x / 1_000.0)
    } else if x < 1_000_000_000.0 {
        format!("{:.1}M", x / 1_000_000.0)
    } else {
        format!("{:.2}B", x / 1_000_000_000.0)
    }
}

/// Define a benchmark group; both the struct-ish and positional forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!{
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn group_runs_to_completion() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        c.test_mode = false;
        trivial(&mut c);
    }

    #[test]
    fn ungrouped_bench_function() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(2);
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
