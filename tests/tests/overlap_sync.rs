//! Bucketed, overlapped gradient sync must be numerically equivalent to
//! the monolithic blocking [`sync_grads`] — the property the nonblocking
//! communication refactor is not allowed to break.
//!
//! Equivalence is up to all-reduce summation order: buckets partition the
//! gradient stream differently than the single flatten, so sums may differ
//! in the last bits. The tolerance below covers that.

use bagualu_comm::harness::run_ranks_map;
use bagualu_comm::payload::WireDType;
use bagualu_comm::shm::Communicator;
use bagualu_model::config::ModelConfig;
use bagualu_model::loss::cross_entropy;
use bagualu_model::moe::GateKind;
use bagualu_model::transformer::Transformer;
use bagualu_parallel::model_dist::DistTransformer;
use bagualu_parallel::moe_dist::A2aKind;
use bagualu_parallel::sync::{
    backward_and_sync_overlapped, backward_and_sync_overlapped_wire, sync_grads,
};
use bagualu_tensor::rng::Rng;
use proptest::prelude::*;

fn cfg(n_experts: usize) -> ModelConfig {
    ModelConfig {
        vocab: 19,
        d_model: 8,
        n_heads: 2,
        n_layers: 2,
        d_ff: 16,
        max_seq: 6,
        n_experts,
        moe_every: 2,
        gate: GateKind::Top2,
        capacity_factor: 64.0,
        aux_weight: 0.0,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    }
}

/// (dense_a, dense_b, expert_a, expert_b) gradient flats.
type GradFlats = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);

/// Run one backward on each of two identical replicas of the same sharded
/// model — one synced monolithically, one synced bucketed/overlapped — and
/// return the per-rank gradient flats.
fn grads_both_ways(
    nranks: usize,
    bucket_bytes: usize,
    seed: u64,
    wire: WireDType,
) -> Vec<GradFlats> {
    let cfg = cfg(nranks * 2);
    let per_rank = 2usize;
    let seq = 4usize;
    let mut data_rng = Rng::seed_from(seed);
    let tokens: Vec<usize> = (0..nranks * per_rank * seq)
        .map(|_| data_rng.below(cfg.vocab))
        .collect();
    let targets: Vec<usize> = (0..nranks * per_rank * seq)
        .map(|_| data_rng.below(cfg.vocab))
        .collect();

    let mut rng = Rng::seed_from(seed ^ 0x5EED);
    let local = Transformer::new(cfg, &mut rng);

    let (tokens_ref, targets_ref, local_ref) = (&tokens, &targets, &local);
    run_ranks_map(nranks, move |c| {
        let lo = c.rank() * per_rank * seq;
        let shard = &tokens_ref[lo..lo + per_rank * seq];
        let tshard = &targets_ref[lo..lo + per_rank * seq];

        let run_one = |overlapped: bool| {
            let mut m = DistTransformer::from_local(local_ref, c.rank(), nranks, A2aKind::Pairwise);
            let logits = m.forward(shard, per_rank, seq, &c);
            let (_, dlogits) = cross_entropy(&logits, tshard);
            if overlapped {
                let stats =
                    backward_and_sync_overlapped_wire(&mut m, &dlogits, &c, bucket_bytes, wire);
                assert_eq!(stats.ring_steps, stats.buckets * 2 * (nranks - 1));
                assert!(stats.ring_steps_overlapped <= stats.ring_steps);
                assert!(stats.dense_scalars > 0);
            } else {
                m.backward(&dlogits, &c);
                sync_grads(&mut m, &c);
            }
            let mut dense = Vec::new();
            m.visit_dense_params(&mut |p| dense.extend_from_slice(p.grad.as_slice()));
            let mut expert = Vec::new();
            m.visit_expert_params(&mut |p| expert.extend_from_slice(p.grad.as_slice()));
            (dense, expert)
        };

        let (dense_a, expert_a) = run_one(false);
        let (dense_b, expert_b) = run_one(true);
        (dense_a, dense_b, expert_a, expert_b)
    })
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str, rank: usize) {
    assert_eq!(a.len(), b.len(), "{what} length mismatch on rank {rank}");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}[{i}] diverged on rank {rank}: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn bucketed_sync_matches_monolithic(
        nranks_sel in 0usize..3,
        bucket_sel in 0usize..4,
        seed in 0u64..1000,
    ) {
        let nranks = [1usize, 2, 4][nranks_sel];
        // From "everything straddles" (single scalars per bucket would be
        // 4 B; 64 B splits most tensors) up to "one bucket fits all".
        let bucket_bytes = [64usize, 1 << 10, 1 << 14, 1 << 22][bucket_sel];
        for (rank, (dense_a, dense_b, expert_a, expert_b)) in
            grads_both_ways(nranks, bucket_bytes, seed, WireDType::F32).into_iter().enumerate()
        {
            assert_close(&dense_a, &dense_b, 1e-5, "dense grad", rank);
            assert_close(&expert_a, &expert_b, 1e-6, "expert grad", rank);
        }
    }

    #[test]
    fn bucketed_sync_over_bf16_wire_tracks_monolithic(
        nranks_sel in 0usize..3,
        bucket_sel in 0usize..3,
        seed in 0u64..1000,
    ) {
        // Same equivalence as above, but the overlapped side ships its
        // buckets as bf16. Each ring hop rounds once to 8 mantissa bits, so
        // the dense gradients may drift by ~hops · 2⁻⁸ relative; expert
        // gradients never leave the rank and must stay at the f32 bound.
        let nranks = [1usize, 2, 4][nranks_sel];
        let bucket_bytes = [64usize, 1 << 12, 1 << 22][bucket_sel];
        let hops = (2 * nranks.saturating_sub(1)).max(1) as f32;
        let tol = hops * (1.0 / 256.0);
        for (rank, (dense_a, dense_b, expert_a, expert_b)) in
            grads_both_ways(nranks, bucket_bytes, seed, WireDType::BF16).into_iter().enumerate()
        {
            assert_close(&dense_a, &dense_b, tol, "dense grad (bf16 wire)", rank);
            assert_close(&expert_a, &expert_b, 1e-6, "expert grad (bf16 wire)", rank);
        }
    }
}

#[test]
fn replica_consistency_check_is_clean_after_overlapped_sync() {
    // After an overlapped sync + identical deterministic updates, replicas
    // must still agree bit-for-bit; the chunked early-exit checker should
    // report zero divergence (and a deliberate perturbation must be caught).
    let nranks = 4;
    let results = run_ranks_map(nranks, move |c| {
        let mut m = DistTransformer::new(cfg(nranks * 2), 9, c.rank(), nranks, A2aKind::Pairwise);
        let mut rng = Rng::seed_from(7 + c.rank() as u64);
        let tokens: Vec<usize> = (0..2 * 4).map(|_| rng.below(19)).collect();
        let targets: Vec<usize> = (0..2 * 4).map(|_| rng.below(19)).collect();
        let logits = m.forward(&tokens, 2, 4, &c);
        let (_, dlogits) = cross_entropy(&logits, &targets);
        backward_and_sync_overlapped(&mut m, &dlogits, &c, 1 << 10);
        // Apply a plain SGD update: deterministic on identical grads.
        m.visit_dense_params(&mut |p| {
            let g: Vec<f32> = p.grad.as_slice().to_vec();
            for (w, gi) in p.value.as_mut_slice().iter_mut().zip(g) {
                *w -= 0.1 * gi;
            }
        });
        let clean = bagualu_parallel::check_replica_consistency(&mut m, &c);
        // Perturb one weight on one rank and re-check: must be detected.
        if c.rank() == 2 {
            m.visit_dense_params(&mut |p| {
                p.value.as_mut_slice()[0] += 0.5;
            });
        }
        let dirty = bagualu_parallel::check_replica_consistency(&mut m, &c);
        (clean, dirty)
    });
    for (clean, dirty) in results {
        assert_eq!(clean, 0.0, "replicas diverged after overlapped sync");
        assert!(dirty >= 0.5, "perturbation not detected: {dirty}");
    }
}
