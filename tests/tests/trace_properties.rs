//! Property-based tests of the structured tracing layer against real
//! training runs: for arbitrary rank counts, accumulation, and sync modes,
//! every rank's span stack must balance, the per-family trace counters
//! must equal the transport's own `CommStats`, and the merged Chrome
//! export must stay structurally valid with no cross-rank interleaving.

use bagualu::trainer::{TrainConfig, Trainer};
use bagualu_comm::CommFamily;
use bagualu_trace::chrome::validate_chrome_json;
use proptest::prelude::*;

/// True when the export lists each tid's events contiguously — once a lane
/// ends, its tid never recurs (no cross-rank interleaving in the file).
fn tids_are_grouped(json: &str) -> bool {
    let mut seen: Vec<usize> = Vec::new();
    for line in json.lines() {
        let Some(pos) = line.find("\"tid\":") else {
            continue;
        };
        let rest = &line[pos + 6..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        let tid: usize = rest[..end].trim().parse().expect("numeric tid");
        match seen.last() {
            Some(&last) if last == tid => {}
            _ if seen.contains(&tid) => return false,
            _ => seen.push(tid),
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn trace_is_balanced_and_counters_match_comm_stats(
        ranks_idx in 0usize..3,
        steps in 2usize..5,
        grad_accum in 1usize..3,
        overlap_bit in 0u8..2,
        seed in 0u64..1000,
    ) {
        // Expert count (4) must divide the rank count.
        let nranks = [1usize, 2, 4][ranks_idx];
        let overlap = overlap_bit == 1;
        let cfg = TrainConfig {
            nranks,
            steps,
            grad_accum,
            overlap,
            bucket_bytes: 1 << 10,
            seed,
            trace: true,
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg).run();
        let trace = report.trace.as_ref().expect("trace requested");

        // One lane per rank; every span stack balanced; nothing dropped.
        prop_assert_eq!(trace.ranks.len(), nranks);
        for rank in 0..nranks {
            let lane = trace.lane(rank).expect("lane per rank");
            prop_assert!(lane.check_balanced().is_ok(), "unbalanced: {:?}",
                lane.check_balanced());
            prop_assert_eq!(lane.span_count(bagualu_trace::names::STEP), steps as u64);
        }
        prop_assert_eq!(trace.total_dropped(), 0);

        // Trace counters vs the transport's own atomic counters: exact
        // equality, sent and received, per family and in total.
        let stats = report.comm_stats.expect("ShmComm collects stats");
        for (family, fam) in stats.families() {
            let (sb, sm) = family.sent_counter_names();
            prop_assert_eq!(trace.counter_total(sb), fam.bytes);
            prop_assert_eq!(trace.counter_total(sm), fam.msgs);
            let (rb, rm) = family.recv_counter_names();
            prop_assert_eq!(trace.counter_total(rb), fam.bytes);
            prop_assert_eq!(trace.counter_total(rm), fam.msgs);
        }
        let total: u64 = trace.sent_bytes_by_family().iter().map(|(_, b)| b).sum();
        prop_assert_eq!(total, stats.total_bytes);
        prop_assert!(stats.family(CommFamily::Allreduce).bytes > 0 || nranks == 1);

        // The merged export is loadable and lanes never interleave.
        let json = trace.to_chrome_json();
        prop_assert!(validate_chrome_json(&json).is_ok(), "invalid export: {:?}",
            validate_chrome_json(&json));
        prop_assert!(tids_are_grouped(&json), "lanes interleaved in export");

        // Overlap accounting: trace-derived fraction equals the report's
        // timer-derived one whenever the overlapped path ran.
        match (trace.overlap_fraction(), report.overlap_fraction) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (Some(a), None) => prop_assert!(false, "trace says overlap ({a}) but report has none"),
            // Ring of one (or overlap off): no steps recorded anywhere.
            (None, other) => prop_assert!(other.unwrap_or(0.0) == 0.0),
        }
    }
}
