//! Property tests for the [`RowOpsBackend`] tier pair: the vectorized
//! tier must be bit-identical to the reference tier for every row op, on
//! arbitrary shapes and seeds — the same contract `Tiled` carries against
//! `Reference` for GEMM (see DESIGN.md "Compute floor"). Unlike the
//! `tiled:fma` GEMM tier there is no tolerance band here: both row-op
//! tiers keep the reference accumulation order and only differ in how
//! rows are split across threads, which must not change a single bit.

use bagualu_tensor::ops::{
    AdamStep, ComputeBackend, ReferenceRowOps, RowOpsBackend, VectorizedRowOps,
};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;
use proptest::prelude::*;

fn bitwise_eq(x: &[f32], y: &[f32]) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Softmax and log-softmax: rows from empty to far past the row-split
    // chunk size, including single-column rows (softmax of one element is
    // exactly 1.0 on both tiers).
    #[test]
    fn vectorized_softmax_is_bitwise_reference(
        rows in 0usize..48, cols in 1usize..300, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[rows, cols], 2.0, &mut rng);
        let (mut a, mut b) = (x.clone(), x.clone());
        ReferenceRowOps.softmax_rows_inplace(&mut a);
        VectorizedRowOps.softmax_rows_inplace(&mut b);
        prop_assert!(bitwise_eq(a.as_slice(), b.as_slice()), "softmax {rows}x{cols}");
        let la = ReferenceRowOps.log_softmax_rows(&x);
        let lb = VectorizedRowOps.log_softmax_rows(&x);
        prop_assert!(bitwise_eq(la.as_slice(), lb.as_slice()), "log_softmax {rows}x{cols}");
    }

    // LayerNorm: all three outputs (y, x̂, 1/σ) must match, since the
    // backward pass consumes the cached x̂ and 1/σ directly.
    #[test]
    fn vectorized_layernorm_is_bitwise_reference(
        rows in 0usize..48, cols in 1usize..300, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[rows, cols], 1.0, &mut rng);
        let gamma: Vec<f32> = (0..cols).map(|i| 1.0 + i as f32 * 1e-3).collect();
        let beta: Vec<f32> = (0..cols).map(|i| i as f32 * 1e-2 - 0.5).collect();
        let a = ReferenceRowOps.layernorm_rows(&x, &gamma, &beta, 1e-5);
        let b = VectorizedRowOps.layernorm_rows(&x, &gamma, &beta, 1e-5);
        prop_assert!(bitwise_eq(a.y.as_slice(), b.y.as_slice()), "y {rows}x{cols}");
        prop_assert!(bitwise_eq(a.xhat.as_slice(), b.xhat.as_slice()), "xhat {rows}x{cols}");
        prop_assert!(bitwise_eq(&a.inv_sigma, &b.inv_sigma), "inv_sigma {rows}x{cols}");
    }

    // Adam: value, m, and v must all agree after the update — optimizer
    // state divergence is how elastic-resize replays go wrong silently.
    #[test]
    fn vectorized_adam_is_bitwise_reference(
        len in 0usize..5000, t in 1u32..50, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let grad = Tensor::randn(&[len.max(1)], 0.1, &mut rng);
        let value0 = Tensor::randn(&[len.max(1)], 1.0, &mut rng);
        let m0 = Tensor::randn(&[len.max(1)], 0.01, &mut rng);
        let v0 = Tensor::randn(&[len.max(1)], 0.001, &mut rng);
        let grad = &grad.as_slice()[..len];
        let step = AdamStep {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            bc1: 1.0 - 0.9f32.powi(t as i32),
            bc2: 1.0 - 0.999f32.powi(t as i32),
        };
        let run = |ops: &dyn RowOpsBackend| {
            let mut value = value0.as_slice()[..len].to_vec();
            let mut m = m0.as_slice()[..len].to_vec();
            let mut v: Vec<f32> = v0.as_slice()[..len].iter().map(|x| x.abs()).collect();
            ops.adam_update(&mut value, grad, &mut m, &mut v, &step);
            (value, m, v)
        };
        let (va, ma, sa) = run(&ReferenceRowOps);
        let (vb, mb, sb) = run(&VectorizedRowOps);
        prop_assert!(bitwise_eq(&va, &vb), "value len={len} t={t}");
        prop_assert!(bitwise_eq(&ma, &mb), "m len={len} t={t}");
        prop_assert!(bitwise_eq(&sa, &sb), "v len={len} t={t}");
    }

    // The backend registry pairing: every ComputeBackend resolves to the
    // row-op tier its bit-identity contract promises — Reference keeps
    // the reference tier, everything faster gets the vectorized tier,
    // and the result is bitwise either way.
    #[test]
    fn compute_backend_rowops_pairing_is_bitwise(
        rows in 1usize..16, cols in 1usize..80, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[rows, cols], 1.0, &mut rng);
        let mut want = x.clone();
        ReferenceRowOps.softmax_rows_inplace(&mut want);
        for cb in [
            ComputeBackend::Reference,
            ComputeBackend::Tiled,
            ComputeBackend::TiledFma,
        ] {
            let ops = cb.instantiate_row_ops();
            let mut got = x.clone();
            ops.softmax_rows_inplace(&mut got);
            prop_assert!(
                bitwise_eq(got.as_slice(), want.as_slice()),
                "{cb} ({}) {rows}x{cols}", ops.name(),
            );
        }
    }
}
