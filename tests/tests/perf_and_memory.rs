//! Properties of the performance projection, cost models, and memory
//! accounting — the analytical side of the reproduction.

use bagualu::hw::{MachineConfig, MemoryBudget, Precision};
use bagualu::model::config::ModelConfig;
use bagualu::net::cost::CollectiveCost;
use bagualu::net::simnet::{Message, SimNet};
use bagualu::perfmodel::{project, PerfInput};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn collective_costs_are_monotone_in_bytes(nodes_pow in 8u32..17, b1 in 1usize..1_000_000, b2 in 1usize..1_000_000) {
        let nodes = 1usize << nodes_pow;
        let cc = CollectiveCost::new(MachineConfig::sunway_subset(nodes));
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(cc.alltoall_pairwise(nodes, lo) <= cc.alltoall_pairwise(nodes, hi));
        prop_assert!(cc.alltoall_hierarchical(nodes, lo) <= cc.alltoall_hierarchical(nodes, hi));
        prop_assert!(cc.allreduce_ring(nodes, lo) <= cc.allreduce_ring(nodes, hi));
        prop_assert!(cc.allreduce_hierarchical(nodes, lo) <= cc.allreduce_hierarchical(nodes, hi));
    }

    #[test]
    fn hierarchical_a2a_always_wins_at_tiny_payloads(nodes_pow in 10u32..17) {
        // In the latency-dominated regime the two-phase algorithm must win
        // whenever the machine spans multiple supernodes.
        let nodes = 1usize << nodes_pow;
        let cc = CollectiveCost::new(MachineConfig::sunway_subset(nodes));
        prop_assert!(cc.alltoall_hierarchical(nodes, 16) < cc.alltoall_pairwise(nodes, 16));
    }

    #[test]
    fn projection_step_time_is_positive_and_decomposes(
        nodes_pow in 8u32..17,
        tokens in 64usize..4096,
    ) {
        let nodes = 1usize << nodes_pow;
        let p = project(&PerfInput {
            tokens_per_node: tokens,
            ..PerfInput::sunway_nodes(ModelConfig::bagualu_1_93t(), nodes)
        });
        prop_assert!(p.step_time > 0.0);
        let b = p.breakdown;
        let sum = b.dense_compute + b.gate_compute + b.expert_compute + b.a2a + b.allreduce;
        prop_assert!((sum - p.step_time).abs() < 1e-9);
        prop_assert!(p.efficiency > 0.0 && p.efficiency <= 1.0);
    }

    #[test]
    fn more_tokens_per_node_amortize_better(nodes_pow in 10u32..17) {
        let nodes = 1usize << nodes_pow;
        let small = project(&PerfInput {
            tokens_per_node: 128,
            ..PerfInput::sunway_nodes(ModelConfig::bagualu_1_93t(), nodes)
        });
        let big = project(&PerfInput {
            tokens_per_node: 4096,
            ..PerfInput::sunway_nodes(ModelConfig::bagualu_1_93t(), nodes)
        });
        // Throughput per token improves with batch (fixed costs amortized).
        prop_assert!(big.tokens_per_sec > small.tokens_per_sec);
    }

    #[test]
    fn memory_budget_is_monotone(
        dense in 1.0e6f64..1.0e10,
        experts in 0.0f64..1.0e13,
        nodes in 2usize..100_000,
    ) {
        let rep = MemoryBudget::per_node(dense, experts, nodes, 2.0, false, 0.0);
        let shard = MemoryBudget::per_node(dense, experts, nodes, 2.0, true, 0.0);
        prop_assert!(shard.total() <= rep.total());
        // More nodes → strictly less per-node expert state.
        let more = MemoryBudget::per_node(dense, experts, nodes * 2, 2.0, false, 0.0);
        prop_assert!(more.total() <= rep.total());
    }

    #[test]
    fn simnet_completion_never_beats_alpha_beta_floor(
        src in 0usize..64,
        dst in 0usize..64,
        kib in 1usize..512,
    ) {
        prop_assume!(src != dst);
        let m = MachineConfig::sunway_subset(64);
        let mut net = SimNet::new(m);
        let bytes = kib * 1024;
        let c = net.run(&[Message { src, dst, bytes, release: 0.0 }]);
        let floor = m.network.latency(m.same_supernode(src, dst))
            + bytes as f64 / m.network.intra_bw;
        prop_assert!(c[0].finish >= floor - 1e-12);
    }
}

#[test]
fn full_machine_headline_is_stable() {
    // Pin the headline projection so accidental cost-model regressions are
    // caught: sustained half-precision compute on the 14.5T preset at the
    // full machine must stay EFLOPS-order.
    let p = project(&PerfInput::sunway_full(ModelConfig::bagualu_14_5t()));
    assert!(
        p.sustained_flops > 5e17 && p.sustained_flops < 5e18,
        "headline drifted: {:.3e}",
        p.sustained_flops
    );
}

#[test]
fn precision_ladder_orders_throughput() {
    let mk = |prec| {
        project(&PerfInput {
            precision: prec,
            ..PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
        })
        .tokens_per_sec
    };
    let half = mk(Precision::Half);
    let fp32 = mk(Precision::FP32);
    let fp64 = mk(Precision::FP64);
    assert!(half > fp32);
    assert!(fp32 >= fp64);
}
