//! End-to-end trainer integration: learning, determinism, precision
//! regimes, gate policies, and the a2a ablation all running the real
//! multi-threaded pipeline.

use bagualu::data::TokenDistribution;
use bagualu::model::config::ModelConfig;
use bagualu::model::moe::GateKind;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::tensor::DType;
use bagualu::trainer::{TrainConfig, Trainer};

fn base() -> TrainConfig {
    TrainConfig {
        model: ModelConfig::tiny(),
        nranks: 2,
        batch_per_rank: 2,
        seq: 8,
        steps: 30,
        lr: 1e-2,
        seed: 3,
        ..Default::default()
    }
}

#[test]
fn training_is_deterministic() {
    let a = Trainer::new(base()).run();
    let b = Trainer::new(base()).run();
    assert_eq!(
        a.loss_curve, b.loss_curve,
        "same config must give identical curves"
    );
    assert_eq!(a.imbalance_curve, b.imbalance_curve);
}

#[test]
fn different_seeds_differ() {
    let a = Trainer::new(base()).run();
    let b = Trainer::new(TrainConfig { seed: 4, ..base() }).run();
    assert_ne!(a.loss_curve, b.loss_curve);
}

#[test]
fn all_gate_kinds_learn() {
    for gate in [GateKind::Top1, GateKind::Top2, GateKind::Balanced] {
        let cfg = TrainConfig {
            model: ModelConfig {
                gate,
                ..ModelConfig::tiny()
            },
            steps: 60,
            ..base()
        };
        let r = Trainer::new(cfg).run();
        assert!(
            r.final_loss() < r.loss_curve[0] * 0.5,
            "{gate:?} failed to learn: {} -> {}",
            r.loss_curve[0],
            r.final_loss()
        );
    }
}

#[test]
fn a2a_choice_does_not_change_results() {
    let flat = Trainer::new(TrainConfig {
        nranks: 4,
        ..base()
    })
    .run();
    let hier = Trainer::new(TrainConfig {
        nranks: 4,
        a2a: A2aKind::Hierarchical { supernode_size: 2 },
        ..base()
    })
    .run();
    for (a, b) in flat.loss_curve.iter().zip(&hier.loss_curve) {
        assert!(
            (a - b).abs() < 1e-4,
            "a2a algorithm changed training: {a} vs {b}"
        );
    }
}

#[test]
fn precision_regimes_all_converge() {
    for dtype in [DType::F32, DType::BF16, DType::F16] {
        let r = Trainer::new(TrainConfig {
            dtype,
            steps: 60,
            ..base()
        })
        .run();
        assert!(
            r.final_loss() < r.loss_curve[0] * 0.5,
            "{dtype} failed: {} -> {}",
            r.loss_curve[0],
            r.final_loss()
        );
        assert!(r.loss_curve.iter().all(|l| l.is_finite()));
    }
}

#[test]
fn dense_model_trains_through_the_same_pipeline() {
    let cfg = TrainConfig {
        model: ModelConfig::tiny_dense(),
        steps: 40,
        ..base()
    };
    let r = Trainer::new(cfg).run();
    assert!(r.final_loss() < r.loss_curve[0] * 0.6);
    // No MoE layers: imbalance is the neutral 1.0 and nothing is dropped.
    assert!(r.imbalance_curve.iter().all(|&i| i == 1.0));
    assert!(r.drop_curve.iter().all(|&d| d == 0.0));
}

#[test]
fn burst_data_stresses_but_does_not_break_training() {
    let cfg = TrainConfig {
        data: TokenDistribution::Burst,
        steps: 20,
        ..base()
    };
    let r = Trainer::new(cfg).run();
    assert!(r.loss_curve.iter().all(|l| l.is_finite()));
    // Burst tokens all route identically: drops must appear at cf=2/top-2
    // with 4 experts once capacity binds.
    assert!(r.drop_curve.iter().any(|&d| d > 0.0) || r.imbalance_curve.iter().any(|&i| i > 1.5));
}

#[test]
fn rope_model_trains_distributed() {
    let cfg = TrainConfig {
        model: ModelConfig {
            rope: true,
            ..ModelConfig::tiny()
        },
        nranks: 4,
        steps: 40,
        ..base()
    };
    let r = Trainer::new(cfg).run();
    assert!(
        r.final_loss() < r.loss_curve[0] * 0.6,
        "RoPE model failed distributed training: {} -> {}",
        r.loss_curve[0],
        r.final_loss()
    );
}

#[test]
fn throughput_and_token_accounting() {
    let cfg = TrainConfig {
        steps: 10,
        ..base()
    };
    let r = Trainer::new(cfg).run();
    assert_eq!(r.total_tokens, 2 * 2 * 8 * 10);
    assert!(r.tokens_per_sec > 0.0);
    assert_eq!(r.loss_curve.len(), 10);
    assert_eq!(r.aux_curve.len(), 10);
}
