//! Expert placement is pure data movement: whichever rank hosts an expert,
//! every token still reaches it, in the same (source rank, position) order,
//! and its gradient flows back to wherever it lives. So for *any* placement
//! policy the distributed forward/backward must match the single-rank
//! oracle — and distinct placements must agree with each other bit for bit.

use bagualu_comm::harness::{run_ranks, run_ranks_map};
use bagualu_comm::shm::Communicator;
use bagualu_model::config::ModelConfig;
use bagualu_model::moe::GateKind;
use bagualu_model::param::HasParams;
use bagualu_model::transformer::Transformer;
use bagualu_parallel::model_dist::DistTransformer;
use bagualu_parallel::moe_dist::A2aKind;
use bagualu_parallel::placement::ExpertPlacement;
use bagualu_parallel::sync::sync_grads;
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn cfg(n_experts: usize, gate: GateKind) -> ModelConfig {
    ModelConfig {
        vocab: 23,
        d_model: 8,
        n_heads: 2,
        n_layers: 2,
        d_ff: 16,
        max_seq: 6,
        n_experts,
        moe_every: 2,
        gate,
        capacity_factor: 64.0, // loose: local/global capacities both slack
        aux_weight: 0.0,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    }
}

fn batch(cfg: &ModelConfig, n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = Rng::seed_from(seed);
    let tokens = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    let targets = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    (tokens, targets)
}

/// Gradient bits after `sync_grads`, keyed by the global parameter name
/// (expert params keep the oracle's expert index in their name, so the map
/// is placement-invariant).
type GradBits = BTreeMap<String, Vec<u32>>;

/// One rank's view of a step under `placement`: logit bits of the forward
/// pass plus every parameter's [`GradBits`].
fn step_under(
    local: &Transformer,
    placement: ExpertPlacement,
    nranks: usize,
    per_rank: usize,
    seq: usize,
    tokens: &[usize],
    targets: &[usize],
) -> Vec<(Vec<u32>, GradBits)> {
    run_ranks_map(nranks, move |c| {
        let mut dist = DistTransformer::from_local_placed(
            local,
            c.rank(),
            nranks,
            A2aKind::Pairwise,
            placement,
        );
        let lo = c.rank() * per_rank * seq;
        let tok = tokens[lo..lo + per_rank * seq].to_vec();
        let tgt = targets[lo..lo + per_rank * seq].to_vec();
        let logits = dist.forward(&tok, per_rank, seq, &c);
        dist.zero_grad();
        dist.train_batch(&tok, &tgt, per_rank, seq, &c);
        sync_grads(&mut dist, &c);
        let mut grads = BTreeMap::new();
        dist.visit_params(&mut |p| {
            let bits: Vec<u32> = p.grad.as_slice().iter().map(|g| g.to_bits()).collect();
            grads.insert(p.name.clone(), bits);
        });
        let logit_bits = logits.into_vec().iter().map(|v| v.to_bits()).collect();
        (logit_bits, grads)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Any placement permutation of the experts keeps the distributed
    // forward AND backward on the single-rank oracle's numbers.
    #[test]
    fn any_placement_matches_the_single_rank_oracle(
        nranks in 1usize..5,
        experts_per_rank in 1usize..3,
        policy in 0usize..3,
        seed in 0u64..500,
    ) {
        // A supernode size must divide the world; sample one of the divisors.
        let divisors: Vec<usize> = (1..=nranks).filter(|s| nranks % s == 0).collect();
        let placement = match policy {
            0 => ExpertPlacement::RoundRobin,
            1 => ExpertPlacement::Block,
            _ => ExpertPlacement::Supernode {
                supernode_size: divisors[seed as usize % divisors.len()],
            },
        };
        let cfg = cfg(nranks * experts_per_rank, GateKind::Top2);
        prop_assume!(cfg.n_experts >= 2); // Top-2 needs two experts
        let per_rank = 2usize;
        let seq = 4usize;
        let (tokens, targets) = batch(&cfg, nranks * per_rank * seq, seed);

        // Oracle: forward logits and global-batch gradients on one rank.
        let mut rng = Rng::seed_from(seed ^ 0xABCD);
        let mut local = Transformer::new(cfg, &mut rng);
        let expect = local.forward(&tokens, nranks * per_rank, seq);
        local.zero_grad();
        local.train_batch(&tokens, &targets, nranks * per_rank, seq);
        let mut oracle: BTreeMap<String, Tensor> = BTreeMap::new();
        local.visit_params(&mut |p| {
            oracle.insert(p.name.clone(), p.grad.clone());
        });

        let (tokens_ref, targets_ref, local_ref) = (&tokens, &targets, &local);
        let (expect_ref, oracle_ref) = (&expect, &oracle);
        run_ranks(nranks, move |c| {
            let mut dist = DistTransformer::from_local_placed(
                local_ref,
                c.rank(),
                nranks,
                A2aKind::Pairwise,
                placement,
            );
            let lo = c.rank() * per_rank * seq;
            let tok = tokens_ref[lo..lo + per_rank * seq].to_vec();
            let tgt = targets_ref[lo..lo + per_rank * seq].to_vec();
            let logits = dist.forward(&tok, per_rank, seq, &c);
            let want = expect_ref.slice_rows(lo, lo + per_rank * seq);
            assert!(
                logits.approx_eq(&want, 1e-3),
                "rank {} forward diverged under {placement}",
                c.rank()
            );
            dist.zero_grad();
            dist.train_batch(&tok, &tgt, per_rank, seq, &c);
            sync_grads(&mut dist, &c);
            dist.visit_params(&mut |p| {
                let want = &oracle_ref[&p.name];
                assert!(
                    p.grad.approx_eq(want, 5e-3),
                    "rank {}: grad mismatch for {} under {placement}",
                    c.rank(),
                    p.name
                );
            });
        });
    }
}

/// Changing the placement policy moves experts between ranks but must not
/// change a single bit of the computation: same logits on every rank, same
/// gradient on every (globally named) parameter.
#[test]
fn placements_agree_bit_for_bit() {
    let cfg = cfg(8, GateKind::Top2);
    let (nranks, per_rank, seq) = (4usize, 2usize, 4usize);
    let (tokens, targets) = batch(&cfg, nranks * per_rank * seq, 77);
    let mut rng = Rng::seed_from(13);
    let local = Transformer::new(cfg, &mut rng);

    let baseline = step_under(
        &local,
        ExpertPlacement::RoundRobin,
        nranks,
        per_rank,
        seq,
        &tokens,
        &targets,
    );
    for placement in [
        ExpertPlacement::Block,
        ExpertPlacement::Supernode { supernode_size: 2 },
        ExpertPlacement::Supernode { supernode_size: 4 },
    ] {
        let got = step_under(&local, placement, nranks, per_rank, seq, &tokens, &targets);
        for (rank, ((logits_a, grads_a), (logits_b, grads_b))) in
            baseline.iter().zip(&got).enumerate()
        {
            assert_eq!(logits_a, logits_b, "rank {rank} logits differ: {placement}");
            // Each rank hosts different experts under different placements,
            // so compare only the names both runs have; the union check
            // below confirms nothing was dropped globally.
            for (name, bits) in grads_b {
                if let Some(base) = grads_a.get(name) {
                    assert_eq!(base, bits, "grad bits differ for {name}: {placement}");
                }
            }
        }
        let union = |runs: &[(Vec<u32>, GradBits)]| -> GradBits {
            let mut all = BTreeMap::new();
            for (_, grads) in runs {
                for (name, bits) in grads {
                    if let Some(prev) = all.insert(name.clone(), bits.clone()) {
                        assert_eq!(&prev, bits, "replicas disagree on {name}");
                    }
                }
            }
            all
        };
        assert_eq!(
            union(&baseline),
            union(&got),
            "global grad map differs: {placement}"
        );
    }
}
