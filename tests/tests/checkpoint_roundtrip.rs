//! Checkpoint format round-trip properties over arbitrary parameter sets.

use bagualu::checkpoint::{load_params, load_params_sharded, save_params, save_params_sharded};
use bagualu::model::param::{HasParams, Param};
use bagualu::tensor::Tensor;
use proptest::prelude::*;

/// A bag of arbitrary parameters standing in for any model.
struct Bag {
    params: Vec<Param>,
}

impl HasParams for Bag {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in &mut self.params {
            f(p);
        }
    }
}

fn bag_from(spec: &[(String, Vec<usize>, f32)]) -> Bag {
    Bag {
        params: spec
            .iter()
            .map(|(name, shape, fill)| {
                let n: usize = shape.iter().product();
                let data: Vec<f32> = (0..n).map(|i| fill + i as f32 * 0.25).collect();
                Param::new(name.clone(), Tensor::from_vec(data, shape))
            })
            .collect(),
    }
}

fn arb_spec() -> impl Strategy<Value = Vec<(String, Vec<usize>, f32)>> {
    proptest::collection::vec(
        (
            "[a-z]{1,8}(\\.[a-z]{1,8}){0,2}",
            proptest::collection::vec(1usize..8, 1..3),
            -100.0f32..100.0,
        ),
        1..12,
    )
    .prop_map(|mut v| {
        // Unique names (duplicates would legitimately collide in the map).
        for (i, (name, _, _)) in v.iter_mut().enumerate() {
            name.push_str(&format!(".{i}"));
        }
        v
    })
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bagualu-ckpt-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn monolithic_round_trip(spec in arb_spec()) {
        let dir = tmp("mono");
        let path = dir.join("bag.bglu");
        let mut a = bag_from(&spec);
        save_params(&path, &mut a).unwrap();

        // Same structure, different values.
        let zero_spec: Vec<_> =
            spec.iter().map(|(n, s, _)| (n.clone(), s.clone(), 0.0f32)).collect();
        let mut b = bag_from(&zero_spec);
        load_params(&path, &mut b).unwrap();
        for (pa, pb) in a.params.iter().zip(&b.params) {
            prop_assert!(pb.value.approx_eq(&pa.value, 0.0));
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sharded_round_trip(spec in arb_spec(), shards in 1usize..6) {
        let dir = tmp("shard");
        let mut a = bag_from(&spec);
        save_params_sharded(&dir, &mut a, shards).unwrap();
        let zero_spec: Vec<_> =
            spec.iter().map(|(n, s, _)| (n.clone(), s.clone(), 0.0f32)).collect();
        let mut b = bag_from(&zero_spec);
        load_params_sharded(&dir, &mut b, shards).unwrap();
        for (pa, pb) in a.params.iter().zip(&b.params) {
            prop_assert!(pb.value.approx_eq(&pa.value, 0.0));
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    // Single-byte corruption anywhere in the file — header, version,
    // lengths, payload, CRC, trailer — must be detected at load.
    #[test]
    fn any_single_byte_flip_fails_to_load(
        spec in arb_spec(),
        pos in any::<usize>(),
        mask in 1u8..255,
    ) {
        let dir = tmp("flip");
        let path = dir.join("bag.bglu");
        let mut a = bag_from(&spec);
        save_params(&path, &mut a).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let i = pos % bytes.len();
        bytes[i] ^= mask;
        std::fs::write(&path, &bytes).unwrap();
        let mut b = bag_from(&spec);
        prop_assert!(
            load_params(&path, &mut b).is_err(),
            "flipping byte {i} of {} (mask {mask:#04x}) went undetected",
            bytes.len()
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn missing_parameter_is_an_error() {
    let dir = tmp("missing");
    let path = dir.join("bag.bglu");
    let mut small = bag_from(&[("only".into(), vec![2], 1.0)]);
    save_params(&path, &mut small).unwrap();
    let mut bigger = bag_from(&[
        ("only".into(), vec![2], 0.0),
        ("extra".into(), vec![3], 0.0),
    ]);
    let err = load_params(&path, &mut bigger).unwrap_err();
    assert!(err.to_string().contains("extra"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn truncated_file_is_an_error() {
    let dir = tmp("trunc");
    let path = dir.join("bag.bglu");
    let mut a = bag_from(&[("p".into(), vec![64], 1.0)]);
    save_params(&path, &mut a).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(load_params(&path, &mut a).is_err());
    let _ = std::fs::remove_dir_all(dir);
}
