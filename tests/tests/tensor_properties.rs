//! Property-based tests of the tensor kernels and half-precision types.

use bagualu_tensor::ops::{matmul, matmul_nt, matmul_tn, softmax_rows};
use bagualu_tensor::pack::{pack_slice, unpack_slice};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::{DType, Tensor, BF16, F16};
use proptest::prelude::*;

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += a.at(i, p) * b.at(p, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn matmul_matches_naive(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        prop_assert!(matmul(&a, &b).approx_eq(&naive_matmul(&a, &b), 1e-3));
    }

    #[test]
    fn nt_and_tn_are_consistent_with_nn(m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[n, k], 1.0, &mut rng);
        prop_assert!(matmul_nt(&a, &b).approx_eq(&matmul(&a, &b.transposed()), 1e-3));
        let b2 = Tensor::randn(&[m, n], 1.0, &mut rng);
        prop_assert!(matmul_tn(&a, &b2).approx_eq(&matmul(&a.transposed(), &b2), 1e-3));
    }

    #[test]
    fn f16_round_trip_is_idempotent(bits in any::<u16>()) {
        // Converting f16→f32→f16 must return the same bit pattern (NaN
        // payloads may differ; compare via f32 semantics for NaN).
        let x = F16(bits).to_f32();
        if x.is_nan() {
            prop_assert!(F16::from_f32(x).to_f32().is_nan());
        } else {
            prop_assert_eq!(F16::from_f32(x), F16(bits));
        }
    }

    #[test]
    fn bf16_round_trip_is_idempotent(bits in any::<u16>()) {
        let x = BF16(bits).to_f32();
        if x.is_nan() {
            prop_assert!(BF16::from_f32(x).to_f32().is_nan());
        } else {
            prop_assert_eq!(BF16::from_f32(x), BF16(bits));
        }
    }

    #[test]
    fn f16_rounding_error_is_bounded(v in -60000.0f32..60000.0) {
        let r = F16::from_f32(v).to_f32();
        // Relative error of round-to-nearest f16 is at most 2^-11 for
        // normal values; subnormals have bounded absolute error.
        if v.abs() >= 6.2e-5 {
            prop_assert!((r - v).abs() <= v.abs() * 4.9e-4, "v={} r={}", v, r);
        } else {
            prop_assert!((r - v).abs() <= 3.0e-8, "v={} r={}", v, r);
        }
    }

    #[test]
    fn pack_unpack_matches_round_trip_bit_for_bit(
        bit_patterns in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        // The wire pack kernels must agree with the scalar DType::round_trip
        // on *every* f32 bit pattern — NaNs, ±inf, subnormals, -0.0 — so the
        // parallel chunked path can never diverge from the scalar semantics.
        let src: Vec<f32> = bit_patterns.iter().map(|&b| f32::from_bits(b)).collect();
        for dt in [DType::F16, DType::BF16] {
            let unpacked = unpack_slice(dt, &pack_slice(dt, &src));
            prop_assert_eq!(unpacked.len(), src.len());
            for (&x, &y) in src.iter().zip(&unpacked) {
                let reference = dt.round_trip(x);
                prop_assert_eq!(
                    y.to_bits(), reference.to_bits(),
                    "dtype {:?}: input {:#010x} packed to {:#010x}, round_trip gives {:#010x}",
                    dt, x.to_bits(), y.to_bits(), reference.to_bits()
                );
            }
        }
    }

    #[test]
    fn quantize_is_monotone(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        // Rounding must preserve order (weaker: not invert it).
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for dt in [DType::F16, DType::BF16] {
            prop_assert!(dt.round_trip(lo) <= dt.round_trip(hi));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(r in 1usize..8, c in 1usize..12, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[r, c], 3.0, &mut rng);
        let s = softmax_rows(&x);
        for i in 0..r {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn transpose_is_involutive(r in 1usize..40, c in 1usize..40, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::randn(&[r, c], 1.0, &mut rng);
        prop_assert!(t.transposed().transposed().approx_eq(&t, 0.0));
    }

    #[test]
    fn concat_slice_round_trip(r1 in 1usize..10, r2 in 1usize..10, c in 1usize..10) {
        let mut rng = Rng::seed_from(7);
        let a = Tensor::randn(&[r1, c], 1.0, &mut rng);
        let b = Tensor::randn(&[r2, c], 1.0, &mut rng);
        let joined = Tensor::concat_rows(&[a.clone(), b.clone()]);
        prop_assert!(joined.slice_rows(0, r1).approx_eq(&a, 0.0));
        prop_assert!(joined.slice_rows(r1, r1 + r2).approx_eq(&b, 0.0));
    }
}
