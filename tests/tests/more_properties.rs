//! Additional property-based coverage: tokenizer round trips, schedule
//! invariants, optimizer scaling behaviour, and virtual-time sanity.

use bagualu::comm::timed::{LinkCost, TwoLevelCost};
use bagualu::model::param::{HasParams, Param};
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::optim::schedule::LrSchedule;
use bagualu::tensor::Tensor;
use bagualu::tokenizer::Bpe;
use proptest::prelude::*;

struct One {
    p: Param,
}

impl HasParams for One {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn bpe_round_trips_arbitrary_ascii(text in "[ -~]{0,200}") {
        let bpe = Bpe::train("the quick brown fox the quick brown fox", 300);
        prop_assert_eq!(bpe.decode(&bpe.encode(&text)), text);
    }

    #[test]
    fn bpe_round_trips_arbitrary_unicode(text in "\\PC{0,80}") {
        let bpe = Bpe::train("héllo wörld héllo wörld", 280);
        prop_assert_eq!(bpe.decode(&bpe.encode(&text)), text);
    }

    #[test]
    fn bpe_never_exceeds_vocab(text in "[a-z ]{0,200}", vocab in 256usize..400) {
        let bpe = Bpe::train("aaaa bbbb aaaa bbbb ab ab ab", vocab);
        prop_assert!(bpe.vocab_size() <= vocab);
        for id in bpe.encode(&text) {
            prop_assert!(id < bpe.vocab_size());
        }
    }

    #[test]
    fn schedules_stay_within_bounds(
        peak in 1e-5f32..1.0,
        warmup in 0usize..100,
        extra in 1usize..1000,
        step in 0usize..2000,
    ) {
        let total = warmup + extra;
        let floor = peak * 0.1;
        for s in [
            LrSchedule::Constant(peak),
            LrSchedule::Warmup { peak, warmup },
            LrSchedule::WarmupCosine { peak, warmup, total, floor },
            LrSchedule::WarmupLinear { peak, warmup, total, floor },
        ] {
            let lr = s.at(step);
            prop_assert!(lr >= 0.0 && lr <= peak * (1.0 + 1e-6), "{s:?} at {step}: {lr}");
            prop_assert!(lr.is_finite());
        }
    }

    #[test]
    fn adam_is_scale_invariant_in_gradient_magnitude(scale in 0.5f32..100.0) {
        // Adam's update direction and (bias-corrected) magnitude are
        // invariant to a constant rescaling of all gradients.
        let mk = || One { p: Param::new("x", Tensor::from_vec(vec![2.0, -1.0], &[2])) };
        let run = |s: f32| {
            let mut m = mk();
            let mut opt = Adam::new(AdamConfig { lr: 0.01, ..Default::default() });
            for _ in 0..5 {
                let mut g = m.p.value.clone();
                g.scale(s);
                m.p.grad = g;
                opt.step(&mut m);
            }
            m.p.value.clone()
        };
        let a = run(1.0);
        let b = run(scale);
        prop_assert!(a.approx_eq(&b, 1e-3), "{:?} vs {:?}", a.as_slice(), b.as_slice());
    }

    #[test]
    fn link_cost_is_monotone_and_topology_aware(
        bytes1 in 0usize..1_000_000,
        bytes2 in 0usize..1_000_000,
        sn in 1usize..64,
    ) {
        let c = TwoLevelCost::sunway_like(sn);
        let (lo, hi) = if bytes1 <= bytes2 { (bytes1, bytes2) } else { (bytes2, bytes1) };
        // Monotone in bytes for both link classes.
        prop_assert!(c.cost(0, sn.min(1), lo) <= c.cost(0, sn.min(1), hi));
        // Cross-supernode at least as expensive as local for equal bytes.
        if sn >= 2 {
            let local = c.cost(0, 1, hi);
            let cross = c.cost(0, sn, hi);
            prop_assert!(cross >= local);
        }
        // Self traffic is free.
        prop_assert_eq!(c.cost(3, 3, hi), 0.0);
    }
}

#[test]
fn tied_and_untied_models_share_everything_but_the_head() {
    use bagualu::model::config::ModelConfig;
    use bagualu::model::transformer::Transformer;
    use bagualu::tensor::rng::Rng;
    let base = ModelConfig::tiny();
    let tied = ModelConfig {
        tie_embeddings: true,
        ..base
    };
    let mut a = Transformer::new(base, &mut Rng::seed_from(1));
    let mut b = Transformer::new(tied, &mut Rng::seed_from(1));
    let names = |m: &mut Transformer| {
        let mut v = Vec::new();
        m.visit_params(&mut |p| v.push(p.name.clone()));
        v
    };
    let na = names(&mut a);
    let nb = names(&mut b);
    assert!(na.iter().any(|n| n.starts_with("head")));
    assert!(!nb.iter().any(|n| n.starts_with("head")));
    let filtered: Vec<&String> = na.iter().filter(|n| !n.starts_with("head")).collect();
    assert_eq!(filtered.len(), nb.len());
}
