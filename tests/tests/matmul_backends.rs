//! Property tests for the pluggable [`MatmulBackend`]s: every backend
//! against a naive triple-loop oracle, plus the bitwise contracts the
//! compute floor is built on (see DESIGN.md "Compute floor"):
//!
//! * `Reference` NN *is* the naive accumulation order, bit for bit;
//! * `Tiled` is bit-identical to `Reference` on every f32 input, for all
//!   three layouts and the fused epilogue — on both the portable and the
//!   wide (AVX-512) micro-kernel, wherever this host runs;
//! * `HalfCompute` equals `Reference` bit for bit once the operands are
//!   pre-quantized (storage format is the *only* difference), and tracks
//!   the f32 oracle within its format's tolerance otherwise;
//! * `tiled:fma` is the one tier that is *not* bit-identical — it must
//!   stay inside the documented per-element error band instead.
//!
//! Shapes deliberately sweep the degenerate cases (`m == 0`, `k == 0`,
//! `n == 1`), the MR/NR/MR_W/NR_W tile edges, and the serial-vs-parallel
//! dispatch boundary at `m·n == 4096`.

use bagualu_tensor::ops::{Activation, ComputeBackend};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::{DType, Tensor};
use proptest::prelude::*;

/// Ground truth: the plainest possible triple loop, ascending `k` per
/// output element — the accumulation order every f32 backend must honor.
fn naive_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a.at(i, p) * b.at(p, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

fn bitwise_eq(x: &Tensor, y: &Tensor) -> bool {
    x.shape() == y.shape()
        && x.as_slice()
            .iter()
            .zip(y.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits())
}

/// The operands a half backend actually computes on: f32 values already
/// rounded through the 16-bit storage format.
fn prequantized(t: &Tensor, dtype: DType) -> Tensor {
    let mut q = t.clone();
    q.quantize(dtype);
    q
}

fn f32_backends() -> [ComputeBackend; 2] {
    [ComputeBackend::Reference, ComputeBackend::Tiled]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Reference NN is the naive order itself — bitwise, not approximate.
    // `m`/`k` start at 0 and `n` at 1 so the degenerate shapes stay
    // covered; `k` crosses the KC=256 panel boundary.
    #[test]
    fn reference_nn_is_bitwise_naive(
        m in 0usize..40, k in 0usize..300, n in 1usize..40, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let r = ComputeBackend::Reference.instantiate().matmul(&a, &b);
        prop_assert!(bitwise_eq(&r, &naive_nn(&a, &b)), "{m}x{k}x{n}");
    }

    // Both f32 backends, all three layouts, against the oracle within
    // f32 reassociation tolerance (NT sums through a 4-chain dot).
    #[test]
    fn f32_backends_match_naive_oracle(
        m in 0usize..48, k in 0usize..130, n in 1usize..80, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let want = naive_nn(&a, &b);
        for cb in f32_backends() {
            let be = cb.instantiate();
            prop_assert!(be.matmul(&a, &b).approx_eq(&want, 1e-3), "{cb} nn {m}x{k}x{n}");
            prop_assert!(
                be.matmul_nt(&a, &b.transposed()).approx_eq(&want, 1e-3),
                "{cb} nt {m}x{k}x{n}"
            );
            prop_assert!(
                be.matmul_tn(&a.transposed(), &b).approx_eq(&want, 1e-3),
                "{cb} tn {m}x{k}x{n}"
            );
        }
    }

    // The load-bearing contract: Tiled == Reference bit for bit, for all
    // layouts and the fused epilogue, across tile-edge and multi-panel
    // shapes. `n` reaches past NR_W=64 so AVX-512 hosts exercise the wide
    // micro-kernel's full tiles and both of its edge kinds.
    #[test]
    fn tiled_is_bit_identical_to_reference(
        m in 0usize..70, k in 0usize..300, n in 0usize..140, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let bt = b.transposed();
        let at = a.transposed();
        let reference = ComputeBackend::Reference.instantiate();
        let tiled = ComputeBackend::Tiled.instantiate();
        prop_assert!(
            bitwise_eq(&tiled.matmul(&a, &b), &reference.matmul(&a, &b)),
            "nn {m}x{k}x{n}"
        );
        prop_assert!(
            bitwise_eq(&tiled.matmul_nt(&a, &bt), &reference.matmul_nt(&a, &bt)),
            "nt {m}x{k}x{n}"
        );
        prop_assert!(
            bitwise_eq(&tiled.matmul_tn(&at, &b), &reference.matmul_tn(&at, &b)),
            "tn {m}x{k}x{n}"
        );
        let bias: Vec<f32> = (0..n).map(|j| (j as f32) * 0.125 - 0.5).collect();
        prop_assert!(
            bitwise_eq(
                &tiled.matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu),
                &reference.matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu),
            ),
            "fused {m}x{k}x{n}"
        );
    }

    // `tiled:fma` trades bitwise identity for a *documented* band: each
    // output element stays within `2(k+1)·ε·Σ_p |A[i,p]·B[p,j]|` of the
    // Reference answer (the standard forward-error bound for a length-k
    // dot product, doubled for the padded-edge contraction). Shapes sweep
    // the edges where the fused path hands off to the exact micro-kernel:
    // `m == 0`, `k` below one KC panel, and `n` not dividing NR_W.
    #[test]
    fn fma_stays_within_documented_band_of_reference(
        m in 0usize..70, k in 0usize..300, n in 0usize..140, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let bt = b.transposed();
        let at = a.transposed();
        let reference = ComputeBackend::Reference.instantiate();
        let fma = ComputeBackend::TiledFma.instantiate();
        let eps = f32::EPSILON as f64;
        let layouts: [(&str, Tensor, Tensor); 3] = [
            ("nn", fma.matmul(&a, &b), reference.matmul(&a, &b)),
            ("nt", fma.matmul_nt(&a, &bt), reference.matmul_nt(&a, &bt)),
            ("tn", fma.matmul_tn(&at, &b), reference.matmul_tn(&at, &b)),
        ];
        for (layout, got, want) in layouts {
            for i in 0..m {
                for j in 0..n {
                    let mut mag = 0.0f64;
                    for p in 0..k {
                        mag += (a.at(i, p) as f64 * b.at(p, j) as f64).abs();
                    }
                    let band = 2.0 * (k as f64 + 1.0) * eps * mag;
                    let diff = (got.at(i, j) as f64 - want.at(i, j) as f64).abs();
                    prop_assert!(
                        diff <= band,
                        "{layout} {m}x{k}x{n} [{i},{j}]: |{} - {}| = {diff:e} > band {band:e}",
                        got.at(i, j),
                        want.at(i, j),
                    );
                }
            }
        }
    }

    // Straddle the serial-vs-rayon dispatch boundary (`m·n` around
    // PAR_THRESHOLD = 4096 = 64·64): the parallel split must not change a
    // single bit on either backend.
    #[test]
    fn par_threshold_boundary_is_bit_stable(
        m in 60usize..69, n in 60usize..69, k in 1usize..32, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let want = naive_nn(&a, &b);
        for cb in f32_backends() {
            let c = cb.instantiate().matmul(&a, &b);
            prop_assert!(bitwise_eq(&c, &want), "{cb} {m}x{k}x{n} vs naive");
        }
    }

    // Half-compute is *exactly* the f32 pipeline on pre-quantized
    // operands: quantization is the only thing the dtype changes.
    #[test]
    fn half_equals_reference_on_prequantized_operands(
        m in 0usize..40, k in 0usize..130, n in 1usize..80,
        bf16 in any::<bool>(), seed in 0u64..1000,
    ) {
        let dtype = if bf16 { DType::BF16 } else { DType::F16 };
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let (aq, bq) = (prequantized(&a, dtype), prequantized(&b, dtype));
        let half = ComputeBackend::Half(dtype).instantiate();
        let reference = ComputeBackend::Reference.instantiate();
        prop_assert!(
            bitwise_eq(&half.matmul(&a, &b), &reference.matmul(&aq, &bq)),
            "nn {m}x{k}x{n} {dtype:?}"
        );
        let (atq, btq) = (aq.transposed(), bq.transposed());
        prop_assert!(
            bitwise_eq(
                &half.matmul_nt(&a, &b.transposed()),
                &reference.matmul_nt(&aq, &btq)
            ),
            "nt {m}x{k}x{n} {dtype:?}"
        );
        prop_assert!(
            bitwise_eq(
                &half.matmul_tn(&a.transposed(), &b),
                &reference.matmul_tn(&atq, &bq)
            ),
            "tn {m}x{k}x{n} {dtype:?}"
        );
    }

    // Against the *unquantized* oracle, half-compute stays inside its
    // format's error envelope (relative tolerance per `approx_eq`).
    #[test]
    fn half_tracks_oracle_within_format_tolerance(
        m in 1usize..32, k in 1usize..64, n in 1usize..32, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let want = naive_nn(&a, &b);
        let f16 = ComputeBackend::Half(DType::F16).instantiate().matmul(&a, &b);
        prop_assert!(f16.approx_eq(&want, 5e-2), "f16 nn {m}x{k}x{n}");
        let bf16 = ComputeBackend::Half(DType::BF16).instantiate().matmul(&a, &b);
        prop_assert!(bf16.approx_eq(&want, 3e-1), "bf16 nn {m}x{k}x{n}");
    }

    // The fused bias+activation epilogue equals the unfused sequence bit
    // for bit on every backend (the half epilogue stays in f32 — it runs
    // at accumulator precision on both sides).
    #[test]
    fn fused_epilogue_is_bitwise_unfused_everywhere(
        m in 0usize..24, k in 0usize..40, n in 1usize..80,
        relu in any::<bool>(), seed in 0u64..1000,
    ) {
        let act = if relu { Activation::Relu } else { Activation::Gelu };
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let bias: Vec<f32> = (0..n).map(|j| (j as f32) * 0.1 - 1.0).collect();
        for cb in [
            ComputeBackend::Reference,
            ComputeBackend::Tiled,
            ComputeBackend::Half(DType::BF16),
            ComputeBackend::Half(DType::F16),
        ] {
            let be = cb.instantiate();
            let fused = be.matmul_bias_act(&a, &b, Some(&bias), act);
            let mut unfused = be.matmul(&a, &b);
            unfused.add_row_broadcast(&bias);
            act.apply(&mut unfused);
            prop_assert!(bitwise_eq(&fused, &unfused), "{cb} {m}x{k}x{n} {act:?}");
        }
    }
}
