//! Cross-crate semantic tests of MoDa parallelism: for randomized shapes,
//! rank counts, and all-to-all algorithms, the distributed model must
//! reproduce the single-rank oracle.

use bagualu_comm::harness::run_ranks;
use bagualu_comm::shm::Communicator;
use bagualu_model::config::ModelConfig;
use bagualu_model::moe::GateKind;
use bagualu_model::transformer::Transformer;
use bagualu_parallel::model_dist::DistTransformer;
use bagualu_parallel::moe_dist::A2aKind;
use bagualu_tensor::rng::Rng;
use proptest::prelude::*;

fn cfg(n_experts: usize, gate: GateKind) -> ModelConfig {
    ModelConfig {
        vocab: 23,
        d_model: 8,
        n_heads: 2,
        n_layers: 2,
        d_ff: 16,
        max_seq: 6,
        n_experts,
        moe_every: 2,
        gate,
        capacity_factor: 64.0, // loose: local/global capacities both slack
        aux_weight: 0.0,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn dist_forward_matches_local(
        nranks in 1usize..5,
        experts_per_rank in 1usize..3,
        gate_sel in 0usize..3,
        seed in 0u64..500,
    ) {
        let gate = [GateKind::Top1, GateKind::Top2, GateKind::Balanced][gate_sel];
        // Top-2 routing requires at least two experts by definition.
        prop_assume!(gate != GateKind::Top2 || nranks * experts_per_rank >= 2);
        let cfg = cfg(nranks * experts_per_rank, gate);
        let per_rank = 2usize;
        let seq = 4usize;
        let mut data_rng = Rng::seed_from(seed);
        let tokens: Vec<usize> =
            (0..nranks * per_rank * seq).map(|_| data_rng.below(cfg.vocab)).collect();

        let mut rng = Rng::seed_from(seed ^ 0xABCD);
        let mut local = Transformer::new(cfg, &mut rng);
        let expect = local.forward(&tokens, nranks * per_rank, seq);

        let (tokens_ref, local_ref, expect_ref) = (&tokens, &local, &expect);
        run_ranks(nranks, move |c| {
            let mut dist =
                DistTransformer::from_local(local_ref, c.rank(), nranks, A2aKind::Pairwise);
            let lo = c.rank() * per_rank * seq;
            let shard = tokens_ref[lo..lo + per_rank * seq].to_vec();
            let logits = dist.forward(&shard, per_rank, seq, &c);
            let want = expect_ref.slice_rows(lo, lo + per_rank * seq);
            assert!(logits.approx_eq(&want, 1e-3), "rank {} diverged", c.rank());
        });
    }

    #[test]
    fn hierarchical_matches_local_too(
        supernode in 1usize..4,
        sn_count in 1usize..4,
        seed in 0u64..500,
    ) {
        let nranks = supernode * sn_count;
        let cfg = cfg(nranks * 2, GateKind::Top2);
        let per_rank = 1usize;
        let seq = 4usize;
        let mut data_rng = Rng::seed_from(seed);
        let tokens: Vec<usize> =
            (0..nranks * per_rank * seq).map(|_| data_rng.below(cfg.vocab)).collect();

        let mut rng = Rng::seed_from(seed ^ 0x1234);
        let mut local = Transformer::new(cfg, &mut rng);
        let expect = local.forward(&tokens, nranks * per_rank, seq);

        let (tokens_ref, local_ref, expect_ref) = (&tokens, &local, &expect);
        run_ranks(nranks, move |c| {
            let mut dist = DistTransformer::from_local(
                local_ref,
                c.rank(),
                nranks,
                A2aKind::Hierarchical { supernode_size: supernode },
            );
            let lo = c.rank() * per_rank * seq;
            let shard = tokens_ref[lo..lo + per_rank * seq].to_vec();
            let logits = dist.forward(&shard, per_rank, seq, &c);
            let want = expect_ref.slice_rows(lo, lo + per_rank * seq);
            assert!(logits.approx_eq(&want, 1e-3), "rank {} diverged", c.rank());
        });
    }
}

#[test]
fn param_count_formula_matches_real_models_across_configs() {
    let mut rng = Rng::seed_from(77);
    for n_experts in [0usize, 2, 4] {
        for moe_every in [1usize, 2] {
            for n_layers in [1usize, 2, 4] {
                let cfg = ModelConfig {
                    vocab: 17,
                    d_model: 8,
                    n_heads: 2,
                    n_layers,
                    d_ff: 12,
                    max_seq: 8,
                    n_experts,
                    moe_every,
                    gate: GateKind::Top1,
                    capacity_factor: 1.25,
                    aux_weight: 0.01,
                    router_groups: 0,
                    rope: false,
                    tie_embeddings: false,
                };
                use bagualu_model::param::HasParams;
                let mut m = Transformer::new(cfg, &mut rng);
                assert_eq!(
                    m.num_params() as u128,
                    cfg.count_params(),
                    "mismatch for experts={n_experts} every={moe_every} layers={n_layers}"
                );
            }
        }
    }
}
