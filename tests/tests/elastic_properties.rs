//! Property: elastic shrink is *only* a re-shard. For any crash step,
//! starting world size, and checkpoint interval, the shrunk continuation's
//! loss bits must equal a fresh (R−1)-rank run restored from the same
//! checkpoint — if the two ever diverge, the elastic path has smuggled in
//! extra computation (or lost some).
//!
//! This is the contract that makes "degrade, don't die" safe to enable by
//! default: a resize is indistinguishable, numerically, from having
//! launched at the smaller width in the first place.

use bagualu::comm::FaultPlan;
use bagualu::model::config::ModelConfig;
use bagualu::trainer::{FtConfig, TrainConfig, Trainer};
use proptest::prelude::*;

const STEPS: usize = 12;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bagualu-elastic-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn elastic_resume_is_bit_identical_to_a_fresh_shrunk_run(
        nranks in 3usize..5,
        crash_step in 1usize..STEPS,
        ckpt_sel in 0usize..3,
    ) {
        let ckpt_every = [3usize, 4, 5][ckpt_sel];
        // The step the elastic driver will restore from: the newest
        // checkpoint strictly before the crash.
        let restored = (crash_step / ckpt_every) * ckpt_every;
        let dir = tmpdir(&format!("{nranks}-{crash_step}-{ckpt_every}"));

        let cfg = TrainConfig {
            steps: STEPS,
            nranks,
            model: ModelConfig {
                n_experts: 12,
                ..ModelConfig::tiny()
            },
            ..Default::default()
        };
        let r = Trainer::new(cfg).run_ft(&FtConfig {
            plan: FaultPlan::new(41).crash(nranks - 1, crash_step),
            ckpt_every,
            heartbeat_ms: 200,
            elastic: true,
            ..FtConfig::new(&dir)
        });
        prop_assert_eq!(r.restarts, 1, "one crash, one recovery");
        prop_assert_eq!(r.resizes, 1, "the recovery shrank the world");
        prop_assert_eq!(r.lost_steps, crash_step - restored);
        prop_assert_eq!(r.loss_curve.len(), STEPS);
        prop_assert!(r.loss_curve.iter().all(|l| l.is_finite()));

        // Reference: a brand-new (R−1)-rank trainer restored from the very
        // same checkpoint (`elastic` authorizes the cross-width re-shard;
        // with no checkpoint yet, both sides start over from step 0).
        let fresh = Trainer::new(TrainConfig {
            nranks: nranks - 1,
            ..cfg
        })
        .run_ft(&FtConfig {
            ckpt_every: 0,
            resume_step: restored,
            elastic: true,
            ..FtConfig::new(&dir)
        });
        prop_assert_eq!(fresh.restarts, 0);
        prop_assert_eq!(
            &r.loss_curve[restored..],
            &fresh.loss_curve[restored..],
            "R={} crash@{} ckpt_every={}: elastic continuation diverged \
             from the fresh {}-rank run",
            nranks,
            crash_step,
            ckpt_every,
            nranks - 1
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
