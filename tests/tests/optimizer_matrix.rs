//! Every optimizer in the crate trains the same model on the same data —
//! the cross-cutting sanity matrix (SGD, momentum, Adam, Adafactor, and
//! the mixed-precision wrapper in all three dtypes).

use bagualu::model::config::ModelConfig;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::Transformer;
use bagualu::optim::adafactor::Adafactor;
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::optim::mixed::MixedPrecision;
use bagualu::optim::sgd::Sgd;
use bagualu::tensor::rng::Rng;
use bagualu::tensor::DType;

const STEPS: usize = 60;

fn data(cfg: &ModelConfig) -> (Vec<usize>, Vec<usize>) {
    let tokens: Vec<usize> = (0..16).map(|i| (i * 7) % cfg.vocab).collect();
    let targets: Vec<usize> = tokens.iter().map(|&t| (t + 5) % cfg.vocab).collect();
    (tokens, targets)
}

/// Train with a per-step closure applying the optimizer; return
/// (first, last) loss.
fn train(mut step_fn: impl FnMut(&mut Transformer)) -> (f32, f32) {
    let cfg = ModelConfig::tiny();
    let mut rng = Rng::seed_from(321);
    let mut model = Transformer::new(cfg, &mut rng);
    let (tokens, targets) = data(&cfg);
    let first = model.train_batch(&tokens, &targets, 2, 8);
    for _ in 0..STEPS {
        step_fn(&mut model);
        model.zero_grad();
        model.train_batch(&tokens, &targets, 2, 8);
    }
    let last = model.train_batch(&tokens, &targets, 2, 8);
    (first.ce_loss, last.ce_loss)
}

fn assert_learned(name: &str, first: f32, last: f32) {
    assert!(
        last < first * 0.4 && last.is_finite(),
        "{name} failed to learn: {first} -> {last}"
    );
}

#[test]
fn sgd_learns() {
    let mut opt = Sgd::new(0.5);
    let (f, l) = train(|m| opt.step(m));
    assert_learned("sgd", f, l);
}

#[test]
fn sgd_momentum_learns() {
    let mut opt = Sgd::with_momentum(0.1, 0.9);
    let (f, l) = train(|m| opt.step(m));
    assert_learned("sgd+momentum", f, l);
}

#[test]
fn adam_learns() {
    let mut opt = Adam::new(AdamConfig {
        lr: 1e-2,
        ..Default::default()
    });
    let (f, l) = train(|m| opt.step(m));
    assert_learned("adam", f, l);
}

#[test]
fn adamw_learns() {
    let mut opt = Adam::new(AdamConfig {
        lr: 1e-2,
        weight_decay: 0.01,
        ..Default::default()
    });
    let (f, l) = train(|m| opt.step(m));
    assert_learned("adamw", f, l);
}

#[test]
fn adafactor_learns_with_sublinear_state() {
    let mut opt = Adafactor::new(0.05);
    let (f, l) = train(|m| opt.step(m));
    assert_learned("adafactor", f, l);
    // State must be far below Adam's 8 B/param.
    let cfg = ModelConfig::tiny();
    let mut model = Transformer::new(cfg, &mut Rng::seed_from(1));
    let n_params = model.num_params();
    assert!(
        opt.state_bytes() < n_params * 3,
        "adafactor state {} vs {} params",
        opt.state_bytes(),
        n_params
    );
}

#[test]
fn mixed_precision_learns_in_every_dtype() {
    for dtype in [DType::F32, DType::BF16, DType::F16] {
        let mut opt = MixedPrecision::new(
            AdamConfig {
                lr: 1e-2,
                ..Default::default()
            },
            dtype,
        );
        let cfg = ModelConfig::tiny();
        let mut rng = Rng::seed_from(321);
        let mut model = Transformer::new(cfg, &mut rng);
        opt.quantize_model(&mut model);
        let (tokens, targets) = data(&cfg);
        let first = model.train_batch(&tokens, &targets, 2, 8);
        for _ in 0..STEPS {
            // Scale the pending grads like the trainer does.
            let s = opt.loss_scale();
            model.visit_params(&mut |p| p.grad.scale(s));
            opt.step(&mut model);
            model.zero_grad();
            model.train_batch(&tokens, &targets, 2, 8);
        }
        let last = model.train_batch(&tokens, &targets, 2, 8);
        assert_learned(&format!("mixed-{dtype}"), first.ce_loss, last.ce_loss);
    }
}
