//! Serving bit-identity pins.
//!
//! Continuous batching and expert-parallel decode are *scheduling*
//! choices: whichever sequences share a batch, whenever they arrive or
//! finish, and however many ranks split the experts, each request must
//! decode to exactly the tokens `Transformer::generate_cached` produces
//! from the same weights. These tests pin that invariant — a plain
//! deterministic pin first, then a property test over random
//! arrival/finish schedules, then the distributed engine against the
//! single-rank oracle.

use bagualu_comm::harness::run_ranks_map;
use bagualu_model::config::ModelConfig;
use bagualu_model::moe::GateKind;
use bagualu_model::transformer::Transformer;
use bagualu_parallel::model_dist::DistTransformer;
use bagualu_parallel::moe_dist::A2aKind;
use bagualu_parallel::placement::ExpertPlacement;
use bagualu_serve::{run, Engine, EngineConfig, Request, ServerOptions};
use bagualu_tensor::rng::Rng;
use proptest::prelude::*;

/// A small serving model: MoE every other block, deterministic Top2 gate
/// (the inference router is dropless, so the capacity factor is inert at
/// decode time and only shapes training).
fn cfg() -> ModelConfig {
    ModelConfig {
        vocab: 23,
        d_model: 8,
        n_heads: 2,
        n_layers: 2,
        d_ff: 16,
        max_seq: 12,
        n_experts: 4,
        moe_every: 2,
        gate: GateKind::Top2,
        capacity_factor: 2.0,
        aux_weight: 0.0,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    }
}

/// The sequential oracle: each prompt decoded alone by the single-rank
/// reference path.
fn oracle(cfg: ModelConfig, seed: u64, jobs: &[(Vec<usize>, usize)]) -> Vec<Vec<usize>> {
    let mut rng = Rng::seed_from(seed);
    let mut model = Transformer::new(cfg, &mut rng);
    jobs.iter()
        .map(|(prompt, max_new)| model.generate_cached(prompt, *max_new))
        .collect()
}

/// Drive one single-rank engine over an arrival schedule: request `i` is
/// submitted just before engine step `arrivals[i]`. Steps keep running
/// (idle or not) until every request has arrived and completed.
fn run_schedule(
    cfg: ModelConfig,
    seed: u64,
    engine_cfg: EngineConfig,
    jobs: &[(Vec<usize>, usize)],
    arrivals: &[usize],
) -> Vec<Vec<usize>> {
    assert_eq!(jobs.len(), arrivals.len());
    let results = run_ranks_map(1, |comm| {
        let mut rng = Rng::seed_from(seed);
        let local = Transformer::new(cfg, &mut rng);
        let model = DistTransformer::from_local(&local, 0, 1, A2aKind::Pairwise);
        let mut eng = Engine::new(model, engine_cfg);
        let mut step = 0usize;
        let mut submitted = 0usize;
        loop {
            for (id, (job, &at)) in jobs.iter().zip(arrivals).enumerate() {
                if at == step {
                    eng.submit(Request::new(id as u64, job.0.clone(), job.1))
                        .expect("schedules only contain feasible requests");
                    submitted += 1;
                }
            }
            if submitted == jobs.len() && eng.local_work() == 0 {
                break;
            }
            eng.step(&comm);
            step += 1;
            assert!(step < 10_000, "schedule failed to converge");
        }
        let mut done = eng.take_finished();
        assert_eq!(
            eng.pool().used_blocks(),
            0,
            "all KV blocks must be returned"
        );
        done.sort_by_key(|r| r.id);
        done.into_iter().map(|r| r.tokens).collect::<Vec<_>>()
    });
    results.into_iter().next().unwrap()
}

#[test]
fn staggered_arrivals_match_the_sequential_oracle() {
    let jobs: Vec<(Vec<usize>, usize)> = vec![
        (vec![3, 7, 1], 6),
        (vec![5], 4),
        (vec![2, 2, 9, 4], 3),
        (vec![11, 0], 5),
    ];
    let want = oracle(cfg(), 300, &jobs);
    // Requests trickle in while earlier ones are mid-decode, with a batch
    // cap that forces queueing: the full continuous-batching path.
    let got = run_schedule(
        cfg(),
        300,
        EngineConfig {
            max_batch: 2,
            kv_blocks: 16,
            block_tokens: 2,
        },
        &jobs,
        &[0, 1, 1, 4],
    );
    assert_eq!(got, want, "batch composition changed decoded tokens");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Any feasible request mix, any arrival schedule, any batch cap, any
    // block size, any (sufficient) pool: tokens match the sequential
    // oracle bit for bit. Tight pools exercise re-queued admissions;
    // small batch caps exercise queueing; arrivals mid-decode exercise
    // join-in-flight; different `max_new` exercise finish-and-detach.
    #[test]
    fn continuous_batching_is_invisible(
        jobs in proptest::collection::vec(
            (proptest::collection::vec(0usize..23, 1..6), 1usize..6),
            1..6,
        ),
        arrivals_raw in proptest::collection::vec(0usize..7, 5),
        max_batch in 1usize..4,
        block_tokens in 1usize..5,
        seed in 0u64..1000,
    ) {
        let arrivals = &arrivals_raw[..jobs.len()];
        let want = oracle(cfg(), seed, &jobs);
        let engine_cfg = EngineConfig {
            // 12 blocks always fit one request (≤ 9 positions even at
            // block_tokens 1) but not always the whole mix — admission
            // back-pressure is part of the sampled space.
            max_batch,
            kv_blocks: 12,
            block_tokens,
        };
        let got = run_schedule(cfg(), seed, engine_cfg, &jobs, arrivals);
        prop_assert_eq!(got, want);
    }
}

#[test]
fn distributed_serving_matches_the_single_rank_oracle() {
    // Supernode-blocked placement under the hierarchical exchange — the
    // deployment shape — with zero locality bias (bias is rank-relative
    // and intentionally changes routing; identity holds only without it).
    let jobs: Vec<(Vec<usize>, usize)> = vec![
        (vec![4, 9], 5),
        (vec![8, 1, 1], 4),
        (vec![2], 6),
        (vec![7, 7, 7, 3], 3),
        (vec![0, 13], 5),
    ];
    let want = oracle(cfg(), 77, &jobs);

    let report = run(
        ServerOptions {
            nranks: 4,
            engine: EngineConfig {
                max_batch: 2,
                kv_blocks: 16,
                block_tokens: 4,
            },
            trace: false,
        },
        |rank| {
            DistTransformer::new_placed(
                cfg(),
                77,
                rank,
                4,
                A2aKind::Hierarchical { supernode_size: 2 },
                ExpertPlacement::Supernode { supernode_size: 2 },
            )
        },
        |client| {
            let tickets: Vec<_> = jobs
                .iter()
                .map(|(p, n)| client.submit(p.clone(), *n))
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("feasible request").tokens)
                .collect::<Vec<_>>()
        },
    );
    assert_eq!(report.output, want, "expert-parallel serving diverged");
}

#[test]
fn world_sizes_agree_with_each_other() {
    // The same request set served on 1, 2, and 4 ranks produces identical
    // tokens: expert placement and the all-to-all path are pure data
    // movement at decode time too.
    let jobs: Vec<(Vec<usize>, usize)> = vec![(vec![6, 2], 5), (vec![1, 1, 4], 4), (vec![9], 6)];
    let serve_on = |nranks: usize| {
        run(
            ServerOptions {
                nranks,
                engine: EngineConfig {
                    max_batch: 3,
                    kv_blocks: 16,
                    block_tokens: 2,
                },
                trace: false,
            },
            |rank| DistTransformer::new(cfg(), 55, rank, nranks, A2aKind::Pairwise),
            |client| {
                let tickets: Vec<_> = jobs
                    .iter()
                    .map(|(p, n)| client.submit(p.clone(), *n))
                    .collect();
                tickets
                    .into_iter()
                    .map(|t| t.wait().expect("feasible request").tokens)
                    .collect::<Vec<_>>()
            },
        )
        .output
    };
    let one = serve_on(1);
    assert_eq!(serve_on(2), one, "2-rank serving diverged from 1-rank");
    assert_eq!(serve_on(4), one, "4-rank serving diverged from 1-rank");
}
