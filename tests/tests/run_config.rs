//! Cross-crate contract tests for the `RunConfig` layer: the TOML schema
//! round-trips exactly, bad input is rejected with actionable errors, a
//! config file drives the trainer bit-identically to the equivalent direct
//! construction, checkpoints are self-describing, and the tuner's winning
//! TOML replays the tuned run.

use bagualu::checkpoint::read_run_config;
use bagualu::runconfig::RunConfig;
use bagualu::tensor::DType;
use bagualu::trainer::{FtConfig, Trainer};
use bagualu_comm::fault::FaultPlan;
use bagualu_comm::WireDType;
use bagualu_parallel::ExpertPlacement;
use bagualu_tune::{tune, CostEnv, SearchSpace, TuneOptions};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bagualu-runconfig-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A config that exercises every section with non-default values, so the
/// round-trip test cannot pass by only preserving defaults.
fn loaded_config() -> RunConfig {
    let mut rc = RunConfig::default();
    rc.model.experts = 8;
    rc.train.ranks = 4;
    rc.train.steps = 3;
    rc.train.batch = 2;
    rc.train.seq = 8;
    rc.train.lr = 3e-3;
    rc.train.seed = 7;
    rc.train.skew = 1.1;
    rc.comm.wire_dtype = WireDType::BF16;
    rc.comm.hierarchical = true;
    rc.comm.supernode_size = 2;
    rc.comm.overlap = false;
    rc.comm.bucket_kib = 256;
    rc.placement.policy = ExpertPlacement::Supernode { supernode_size: 0 };
    rc.placement.locality_bias = 1.5;
    rc.ft.enabled = true;
    rc.ft.ckpt_dir = "/tmp/ck".into();
    rc.ft.ckpt_every = 2;
    rc
}

#[test]
fn toml_round_trip_is_exact() {
    for rc in [RunConfig::default(), loaded_config()] {
        rc.validate().unwrap();
        let text = rc.to_toml();
        let back = RunConfig::from_toml(&text).unwrap();
        assert_eq!(back, rc, "TOML round-trip changed the config:\n{text}");
        // Serializing the round-tripped config is a fixed point.
        assert_eq!(back.to_toml(), text);
    }
}

#[test]
fn unknown_and_duplicate_keys_are_rejected_with_line_numbers() {
    let mut text = RunConfig::default().to_toml();
    text.push_str("\n[train]\nbogus_knob = 1\n");
    let err = RunConfig::from_toml(&text).unwrap_err();
    assert!(err.contains("bogus_knob"), "{err}");
    assert!(err.contains("line"), "error should name the line: {err}");

    let dup = RunConfig::default().to_toml().replacen("ranks", "steps", 1);
    let err = RunConfig::from_toml(&dup).unwrap_err();
    assert!(err.contains("steps"), "{err}");
}

#[test]
fn contradictory_configs_fail_validation_not_later() {
    // ZeRO shards fp32 master state; a half-precision model contradicts it.
    let mut rc = RunConfig::default();
    rc.train.zero = true;
    rc.train.dtype = DType::F16;
    let err = rc.validate().unwrap_err();
    assert!(err.contains("zero"), "{err}");

    // Supernode-aware placement is meaningless without a hierarchical a2a.
    let mut rc = RunConfig::default();
    rc.placement.policy = ExpertPlacement::Supernode { supernode_size: 0 };
    rc.comm.hierarchical = false;
    let err = rc.validate().unwrap_err();
    assert!(err.to_lowercase().contains("hierarchical"), "{err}");

    // from_toml applies the same gate, so a hand-edited file cannot smuggle
    // a contradiction past the CLI.
    let mut bad = RunConfig::default();
    bad.train.zero = true;
    bad.train.dtype = DType::F16;
    assert!(RunConfig::from_toml(&bad.to_toml()).is_err());
}

/// The reproducibility contract behind `bagualu train --config`: a config
/// that went through the TOML file format drives the trainer to the exact
/// same losses as the directly-constructed equivalent.
#[test]
fn config_file_reproduces_direct_construction_bit_for_bit() {
    let mut rc = RunConfig::default();
    rc.train.ranks = 2;
    rc.train.steps = 3;
    rc.train.batch = 2;
    rc.train.seq = 8;
    rc.comm.wire_dtype = WireDType::BF16;
    rc.comm.hierarchical = true;

    let via_file = RunConfig::from_toml(&rc.to_toml()).unwrap();
    let a = Trainer::new(rc.to_train_config().unwrap()).run();
    let b = Trainer::new(via_file.to_train_config().unwrap()).run();
    assert_eq!(
        a.loss_curve, b.loss_curve,
        "loss curves must be bitwise equal"
    );
    assert_eq!(a.aux_curve, b.aux_curve);
    assert_eq!(a.total_tokens, b.total_tokens);
}

/// Checkpoints are self-describing: the shard embeds the `RunConfig` of
/// the run that wrote it, and reading it back recovers exactly what
/// `RunConfig::reconstruct` says the run was.
#[test]
fn checkpoint_embeds_the_run_config_that_wrote_it() {
    let dir = tmp("embed");
    let mut rc = RunConfig::default();
    rc.train.ranks = 2;
    rc.train.steps = 4;
    rc.train.batch = 1;
    rc.train.seq = 8;
    let cfg = rc.to_train_config().unwrap();
    let ft = FtConfig {
        plan: FaultPlan::new(5),
        ckpt_every: 2,
        ..FtConfig::new(&dir)
    };
    Trainer::new(cfg).run_ft(&ft);

    // The run checkpoints at step 2 (the final step is never checkpointed);
    // read the config back from a shard.
    let shard = dir.join("step2").join("rank0.bglu");
    assert!(shard.exists(), "expected checkpoint shard at {shard:?}");
    let embedded = read_run_config(&shard)
        .unwrap()
        .expect("checkpoint carries a __runconfig__ record");
    let expected =
        RunConfig::reconstruct(&cfg, Some(&ft)).expect("this run is expressible in the schema");
    assert_eq!(embedded, expected);
    // And the embedded config names the checkpoint directory it came from.
    assert!(embedded.ft.enabled);
    assert_eq!(embedded.ft.ckpt_dir, dir.display().to_string());
    assert_eq!(embedded.ft.ckpt_every, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end tuner contract: the winning TOML, fed back through the file
/// format, replays the tuned run bit-identically.
#[test]
fn tuner_winning_toml_replays_bit_identically() {
    let mut base = RunConfig::default();
    base.train.ranks = 2;
    base.train.steps = 2;
    base.train.batch = 1;
    base.train.seq = 8;
    let space = SearchSpace {
        wire_dtypes: vec![WireDType::F32, WireDType::F16],
        hierarchical: vec![false, true],
        placements: vec![bagualu_tune::space::PlacementChoice::RoundRobin],
        overlap: vec![true],
        bucket_kibs: vec![1024],
    };
    let opts = TuneOptions {
        measure: false,
        ..TuneOptions::default()
    };
    let report = tune(&base, &space, &CostEnv::sunway(4096), &opts).unwrap();

    let replayed = RunConfig::from_toml(&report.winning_toml()).unwrap();
    assert_eq!(replayed, report.winner().rc);
    let a = Trainer::new(report.winner().rc.to_train_config().unwrap()).run();
    let b = Trainer::new(replayed.to_train_config().unwrap()).run();
    assert_eq!(a.loss_curve, b.loss_curve);
}
