//! Fault tolerance: a run killed after checkpointing must resume in a
//! fresh set of rank "processes" and keep training from where it left off.
//!
//! At 96,000 nodes the mean time between node failures is shorter than a
//! training run; checkpoint-and-restart is the system's availability story.
//! Simulated here: phase 1 trains and checkpoints, the world is torn down
//! (threads joined, all state dropped except the checkpoint files), and
//! phase 2 boots brand-new ranks that restore and continue.

use bagualu::checkpoint::{load_params_sharded, save_params_sharded};
use bagualu::comm::harness::run_ranks_map;
use bagualu::comm::shm::Communicator;
use bagualu::data::{SyntheticLM, TokenDistribution};
use bagualu::model::config::ModelConfig;
use bagualu::model::loss::cross_entropy;
use bagualu::model::param::HasParams;
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::parallel::model_dist::DistTransformer;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::parallel::sync::sync_grads;
use std::path::Path;

const NRANKS: usize = 2;
const BATCH: usize = 4;
const SEQ: usize = 8;

fn train_phase(dir: &Path, restore: bool, start_step: usize, steps: usize) -> Vec<f32> {
    let model_cfg = ModelConfig {
        n_experts: 4,
        ..ModelConfig::tiny()
    };
    let task = SyntheticLM::new(model_cfg.vocab, TokenDistribution::Uniform, 55);
    let (task_ref, dir_ref) = (&task, dir);
    let mut curves = run_ranks_map(NRANKS, move |comm| {
        let rank = comm.rank();
        let mut model = DistTransformer::new(model_cfg, 404, rank, NRANKS, A2aKind::Pairwise);
        if restore {
            load_params_sharded(dir_ref.join(format!("rank{rank}")), &mut model, 1)
                .expect("restore must succeed");
        }
        let mut opt = Adam::new(AdamConfig {
            lr: 1e-2,
            ..Default::default()
        });
        let mut losses = Vec::with_capacity(steps);
        for step in start_step..start_step + steps {
            let (tokens, targets) = task_ref.batch(BATCH, SEQ, rank, step);
            let logits = model.forward(&tokens, BATCH, SEQ, &comm);
            let (loss, dlogits) = cross_entropy(&logits, &targets);
            model.backward(&dlogits, &comm);
            sync_grads(&mut model, &comm);
            opt.step(&mut model);
            model.zero_grad();
            losses.push(loss);
        }
        save_params_sharded(dir_ref.join(format!("rank{rank}")), &mut model, 1).unwrap();
        losses
    });
    curves.swap_remove(0)
}

#[test]
fn checkpoint_restart_continues_training() {
    let dir = std::env::temp_dir().join(format!("bagualu-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Phase 1: fresh training.
    let phase1 = train_phase(&dir, false, 0, 25);
    let initial = phase1[0];
    let before_crash = *phase1.last().unwrap();
    assert!(
        before_crash < initial * 0.5,
        "phase 1 must learn: {initial} -> {before_crash}"
    );

    // "Crash": everything is gone except the checkpoint files.

    // Phase 2: new ranks restore and continue.
    let phase2 = train_phase(&dir, true, 25, 25);
    let resumed = phase2[0];
    assert!(
        resumed < initial * 0.5,
        "resumed run lost the learned state: {resumed} vs initial {initial}"
    );
    // Resumption is close to where we crashed (fresh Adam state and a new
    // batch allow some slack, but not a return to random-init loss).
    assert!(
        resumed < before_crash + 1.0,
        "loss jumped after restore: {before_crash} -> {resumed}"
    );
    // And training keeps improving.
    let final_loss = *phase2.last().unwrap();
    assert!(
        final_loss <= resumed * 1.1,
        "no further progress: {resumed} -> {final_loss}"
    );

    // Control: a run that does NOT restore starts from scratch.
    let cold = train_phase(&dir, false, 25, 1);
    assert!(
        cold[0] > resumed * 2.0,
        "cold start should be much worse than resume: {} vs {resumed}",
        cold[0]
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The automated version of the scenario above: `Trainer::run_ft` detects
/// injected crashes via the failure-aware collectives, restores the last
/// manifest checkpoint, and resumes — twice in one run.
#[test]
fn trainer_recovers_from_two_crashes_automatically() {
    use bagualu::comm::FaultPlan;
    use bagualu::trainer::{FtConfig, TrainConfig, Trainer};

    let dir = std::env::temp_dir().join(format!("bagualu-ft-auto-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = TrainConfig {
        steps: 10,
        ..TrainConfig::default()
    };
    // Checkpoints at steps 3, 6, 9; rank 0 dies at step 3, rank 1 at 7.
    let ft = FtConfig {
        plan: FaultPlan::new(11).crash(0, 3).crash(1, 7),
        ckpt_every: 3,
        max_restarts: 3,
        heartbeat_ms: 300,
        ..FtConfig::new(&dir)
    };
    let r = Trainer::new(cfg).run_ft(&ft);
    assert_eq!(r.restarts, 2);
    // Crash at 3 lands exactly on the step-3 checkpoint (0 lost); crash at
    // 7 rolls back to step 6 (1 step lost).
    assert_eq!(r.lost_steps, 1);
    assert_eq!(r.loss_curve.len(), 10);
    assert!(r.loss_curve.iter().all(|l| l.is_finite()));
    assert!(
        r.final_loss() < r.loss_curve[0],
        "recovered run must still learn: {} -> {}",
        r.loss_curve[0],
        r.final_loss()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dropped message inside a failure-aware collective surfaces as a
/// timeout on every rank instead of a deadlock; the deadline harness
/// guards the whole scenario in case detection itself regresses.
#[test]
fn dropped_message_times_out_under_watchdog() {
    use bagualu::comm::shm::World;
    use bagualu::comm::{allreduce_ft, FaultPlan, FaultRuntime, RankOutcome, ReduceOp};
    use std::sync::mpsc;
    use std::time::Duration;

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let faults = std::sync::Arc::new(FaultRuntime::new(FaultPlan::new(21).drop_nth(1, 0), 3));
        let world = World::new_with_faults(3, faults);
        let outcomes = bagualu::comm::run_ranks_ft(&world, |c| {
            allreduce_ft(
                &c,
                vec![c.rank() as f32],
                ReduceOp::Sum,
                Duration::from_millis(200),
            )
        });
        tx.send(outcomes).unwrap();
    });
    let outcomes = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("deadlock: dropped message was never detected");
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, RankOutcome::TimedOut(_))),
        "someone must observe the drop"
    );
}

/// A `DelayNth` message held past its receiver's patience is still
/// delivered exactly once: the retried `recv_timeout` that eventually gets
/// it must not leave a duplicate behind, and the `delayed` stat counts the
/// event once, not once per receive attempt.
#[test]
fn delayed_message_is_delivered_once_and_counted_once() {
    use bagualu::comm::shm::World;
    use bagualu::comm::{
        run_ranks_ft, CommError, FaultPlan, FaultRuntime, FtCommunicator, RankOutcome,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let faults = Arc::new(FaultRuntime::new(
        FaultPlan::new(31).delay_nth(1, 0, 120),
        2,
    ));
    let world = World::new_with_faults(2, Arc::clone(&faults));
    let outcomes = run_ranks_ft(&world, |c| {
        if c.rank() == 1 {
            // The sender stalls for the full delay (a stalled link blocks
            // the producer), then the message goes out normally.
            c.send(0, 5, vec![7.0f32, 8.0].into());
            Ok(Vec::new())
        } else {
            // First attempt: shorter than the injected delay — times out.
            match c.recv_timeout(1, 5, Duration::from_millis(20)) {
                Err(CommError::Timeout { .. }) => {}
                other => panic!("expected a timeout racing the delay, got {other:?}"),
            }
            // Retry with patience: the delayed message arrives, once.
            let got = c.recv_timeout(1, 5, Duration::from_secs(10))?.into_f32();
            // And never twice.
            match c.recv_timeout(1, 5, Duration::from_millis(80)) {
                Err(CommError::Timeout { .. }) => {}
                other => panic!("delayed message delivered twice: {other:?}"),
            }
            Ok(got)
        }
    });
    match &outcomes[0] {
        RankOutcome::Ok(v) => assert_eq!(v, &vec![7.0f32, 8.0], "payload intact"),
        other => panic!("receiver failed: {other:?}"),
    }
    assert!(outcomes[1].is_ok(), "sender failed");
    let s = faults.stats();
    assert_eq!(s.delayed, 1, "one delay event, counted once");
    assert_eq!((s.dropped, s.corrupted), (0, 0));
}

/// A `DelayNth` stall inside the *overlapped* gradient sync must neither
/// trip the deadlock watchdog (the deadline is far beyond the delay) nor
/// change the result: the bucketed rings drain late but completely, the
/// gradients match the blocking sync, and the delay is counted once.
#[test]
fn overlapped_sync_absorbs_a_delayed_message_under_the_watchdog() {
    use bagualu::comm::shm::World;
    use bagualu::comm::{run_ranks_ft, FaultPlan, FaultRuntime};
    use bagualu::parallel::sync::backward_and_sync_overlapped;
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    // The manual form of `run_ranks_deadline` (that helper builds its own
    // fault-free world; this scenario needs an armed one): the channel
    // timeout is the watchdog, and it only fires if the delayed ring
    // message wedges the sync.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        // Delay an early backward-phase message from rank 1 by 200 ms —
        // several ring steps' worth of stall in the middle of the sync.
        let faults = Arc::new(FaultRuntime::new(
            FaultPlan::new(33).delay_nth(1, 6, 200),
            2,
        ));
        let world = World::new_with_faults(2, Arc::clone(&faults));
        let outcomes = run_ranks_ft(&world, |c| {
            let model_cfg = ModelConfig {
                n_experts: 4,
                ..ModelConfig::tiny()
            };
            let task = SyntheticLM::new(model_cfg.vocab, TokenDistribution::Uniform, 77);
            let run_one = |overlapped: bool| {
                let mut m = DistTransformer::new(model_cfg, 505, c.rank(), 2, A2aKind::Pairwise);
                let (tokens, targets) = task.batch(BATCH, SEQ, c.rank(), 0);
                let logits = m.forward(&tokens, BATCH, SEQ, &c);
                let (_, dlogits) = cross_entropy(&logits, &targets);
                if overlapped {
                    backward_and_sync_overlapped(&mut m, &dlogits, &c, 1 << 10);
                } else {
                    m.backward(&dlogits, &c);
                    sync_grads(&mut m, &c);
                }
                let mut dense = Vec::new();
                m.visit_dense_params(&mut |p| dense.extend_from_slice(p.grad.as_slice()));
                dense
            };
            let blocking = run_one(false);
            let overlapped = run_one(true);
            Ok((blocking, overlapped))
        });
        let stats = faults.stats();
        let _ = tx.send((outcomes, stats));
    });
    let (outcomes, stats) = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("watchdog: overlapped sync wedged on a delayed message");
    for (rank, o) in outcomes.into_iter().enumerate() {
        let (blocking, overlapped) = o.ok().expect("rank must complete");
        assert_eq!(blocking.len(), overlapped.len());
        for (i, (a, b)) in blocking.iter().zip(&overlapped).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5 * (1.0 + a.abs().max(b.abs())),
                "dense grad[{i}] diverged on rank {rank}: {a} vs {b}"
            );
        }
    }
    assert_eq!(stats.delayed, 1, "the stalled message is counted once");
    assert_eq!((stats.dropped, stats.corrupted), (0, 0));
}
