//! Fault tolerance: a run killed after checkpointing must resume in a
//! fresh set of rank "processes" and keep training from where it left off.
//!
//! At 96,000 nodes the mean time between node failures is shorter than a
//! training run; checkpoint-and-restart is the system's availability story.
//! Simulated here: phase 1 trains and checkpoints, the world is torn down
//! (threads joined, all state dropped except the checkpoint files), and
//! phase 2 boots brand-new ranks that restore and continue.

use bagualu::checkpoint::{load_params_sharded, save_params_sharded};
use bagualu::comm::harness::run_ranks_map;
use bagualu::comm::shm::Communicator;
use bagualu::data::{SyntheticLM, TokenDistribution};
use bagualu::model::config::ModelConfig;
use bagualu::model::loss::cross_entropy;
use bagualu::model::param::HasParams;
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::parallel::model_dist::DistTransformer;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::parallel::sync::sync_grads;
use std::path::Path;

const NRANKS: usize = 2;
const BATCH: usize = 4;
const SEQ: usize = 8;

fn train_phase(dir: &Path, restore: bool, start_step: usize, steps: usize) -> Vec<f32> {
    let model_cfg = ModelConfig {
        n_experts: 4,
        ..ModelConfig::tiny()
    };
    let task = SyntheticLM::new(model_cfg.vocab, TokenDistribution::Uniform, 55);
    let (task_ref, dir_ref) = (&task, dir);
    let mut curves = run_ranks_map(NRANKS, move |comm| {
        let rank = comm.rank();
        let mut model = DistTransformer::new(model_cfg, 404, rank, NRANKS, A2aKind::Pairwise);
        if restore {
            load_params_sharded(dir_ref.join(format!("rank{rank}")), &mut model, 1)
                .expect("restore must succeed");
        }
        let mut opt = Adam::new(AdamConfig {
            lr: 1e-2,
            ..Default::default()
        });
        let mut losses = Vec::with_capacity(steps);
        for step in start_step..start_step + steps {
            let (tokens, targets) = task_ref.batch(BATCH, SEQ, rank, step);
            let logits = model.forward(&tokens, BATCH, SEQ, &comm);
            let (loss, dlogits) = cross_entropy(&logits, &targets);
            model.backward(&dlogits, &comm);
            sync_grads(&mut model, &comm);
            opt.step(&mut model);
            model.zero_grad();
            losses.push(loss);
        }
        save_params_sharded(dir_ref.join(format!("rank{rank}")), &mut model, 1).unwrap();
        losses
    });
    curves.swap_remove(0)
}

#[test]
fn checkpoint_restart_continues_training() {
    let dir = std::env::temp_dir().join(format!("bagualu-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Phase 1: fresh training.
    let phase1 = train_phase(&dir, false, 0, 25);
    let initial = phase1[0];
    let before_crash = *phase1.last().unwrap();
    assert!(
        before_crash < initial * 0.5,
        "phase 1 must learn: {initial} -> {before_crash}"
    );

    // "Crash": everything is gone except the checkpoint files.

    // Phase 2: new ranks restore and continue.
    let phase2 = train_phase(&dir, true, 25, 25);
    let resumed = phase2[0];
    assert!(
        resumed < initial * 0.5,
        "resumed run lost the learned state: {resumed} vs initial {initial}"
    );
    // Resumption is close to where we crashed (fresh Adam state and a new
    // batch allow some slack, but not a return to random-init loss).
    assert!(
        resumed < before_crash + 1.0,
        "loss jumped after restore: {before_crash} -> {resumed}"
    );
    // And training keeps improving.
    let final_loss = *phase2.last().unwrap();
    assert!(
        final_loss <= resumed * 1.1,
        "no further progress: {resumed} -> {final_loss}"
    );

    // Control: a run that does NOT restore starts from scratch.
    let cold = train_phase(&dir, false, 25, 1);
    assert!(
        cold[0] > resumed * 2.0,
        "cold start should be much worse than resume: {} vs {resumed}",
        cold[0]
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The automated version of the scenario above: `Trainer::run_ft` detects
/// injected crashes via the failure-aware collectives, restores the last
/// manifest checkpoint, and resumes — twice in one run.
#[test]
fn trainer_recovers_from_two_crashes_automatically() {
    use bagualu::comm::FaultPlan;
    use bagualu::trainer::{FtConfig, TrainConfig, Trainer};

    let dir = std::env::temp_dir().join(format!("bagualu-ft-auto-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = TrainConfig {
        steps: 10,
        ..TrainConfig::default()
    };
    // Checkpoints at steps 3, 6, 9; rank 0 dies at step 3, rank 1 at 7.
    let ft = FtConfig {
        plan: FaultPlan::new(11).crash(0, 3).crash(1, 7),
        ckpt_every: 3,
        max_restarts: 3,
        heartbeat_ms: 300,
        ..FtConfig::new(&dir)
    };
    let r = Trainer::new(cfg).run_ft(&ft);
    assert_eq!(r.restarts, 2);
    // Crash at 3 lands exactly on the step-3 checkpoint (0 lost); crash at
    // 7 rolls back to step 6 (1 step lost).
    assert_eq!(r.lost_steps, 1);
    assert_eq!(r.loss_curve.len(), 10);
    assert!(r.loss_curve.iter().all(|l| l.is_finite()));
    assert!(
        r.final_loss() < r.loss_curve[0],
        "recovered run must still learn: {} -> {}",
        r.loss_curve[0],
        r.final_loss()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dropped message inside a failure-aware collective surfaces as a
/// timeout on every rank instead of a deadlock; the deadline harness
/// guards the whole scenario in case detection itself regresses.
#[test]
fn dropped_message_times_out_under_watchdog() {
    use bagualu::comm::shm::World;
    use bagualu::comm::{allreduce_ft, FaultPlan, FaultRuntime, RankOutcome, ReduceOp};
    use std::sync::mpsc;
    use std::time::Duration;

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let faults = std::sync::Arc::new(FaultRuntime::new(FaultPlan::new(21).drop_nth(1, 0), 3));
        let world = World::new_with_faults(3, faults);
        let outcomes = bagualu::comm::run_ranks_ft(&world, |c| {
            allreduce_ft(
                &c,
                vec![c.rank() as f32],
                ReduceOp::Sum,
                Duration::from_millis(200),
            )
        });
        tx.send(outcomes).unwrap();
    });
    let outcomes = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("deadlock: dropped message was never detected");
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, RankOutcome::TimedOut(_))),
        "someone must observe the drop"
    );
}
