//! Property-based tests of the collective algorithms: for arbitrary rank
//! counts, buffer lengths, and payload shapes, every algorithm must match
//! its mathematical definition, and the hierarchical all-to-all must be
//! semantically identical to the pairwise one.

use bagualu_comm::collectives::{
    allgather, allreduce, alltoallv, alltoallv_hierarchical, broadcast, bucketed_allreduce,
    bucketed_allreduce_wire, reduce_scatter, ReduceOp,
};
use bagualu_comm::harness::{run_ranks, run_ranks_map};
use bagualu_comm::payload::WireDType;
use bagualu_comm::shm::Communicator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn allreduce_sum_matches_definition(n in 1usize..9, len in 0usize..40, seed in 0u64..1000) {
        run_ranks(n, |c| {
            // Deterministic pseudo-data per (rank, index).
            let data: Vec<f32> = (0..len)
                .map(|i| ((c.rank() * 31 + i * 7 + seed as usize) % 13) as f32 - 6.0)
                .collect();
            let out = allreduce(&c, data, ReduceOp::Sum);
            for (i, &v) in out.iter().enumerate() {
                let expect: f32 = (0..n)
                    .map(|r| ((r * 31 + i * 7 + seed as usize) % 13) as f32 - 6.0)
                    .sum();
                assert!((v - expect).abs() < 1e-4, "i={} v={} expect={}", i, v, expect);
            }
        });
    }

    #[test]
    fn allreduce_max_matches_definition(n in 1usize..9, len in 1usize..20) {
        run_ranks(n, |c| {
            let data: Vec<f32> = (0..len).map(|i| (c.rank() * len + i) as f32).collect();
            let out = allreduce(&c, data, ReduceOp::Max);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, ((n - 1) * len + i) as f32);
            }
        });
    }

    #[test]
    fn hierarchical_alltoall_equals_pairwise(
        supernodes in 1usize..5,
        sn_size in 1usize..5,
        max_len in 1usize..6,
        seed in 0u64..1000,
    ) {
        let n = supernodes * sn_size;
        run_ranks(n, |c| {
            let parts: Vec<Vec<f32>> = (0..n)
                .map(|d| {
                    let len = (c.rank() + d + seed as usize) % max_len;
                    (0..len).map(|i| (c.rank() * 1000 + d * 10 + i) as f32).collect()
                })
                .collect();
            let flat = alltoallv(&c, parts.clone());
            let hier = alltoallv_hierarchical(&c, parts, sn_size);
            assert_eq!(flat, hier);
        });
    }

    #[test]
    fn compressed_bucketed_allreduce_tracks_f32(
        n in 1usize..9,
        lens in proptest::collection::vec(0usize..40, 1..4),
        seed in 0u64..1000,
    ) {
        // For arbitrary rank counts and bucket shapes, the 16-bit wire must
        // reproduce the f32 result within per-hop rounding: values are
        // expanded to f32, accumulated, and re-rounded once per ring hop,
        // so the relative error is bounded by hops · ulp(dtype). bf16 keeps
        // 8 mantissa bits (2^-8 relative per rounding), f16 keeps 11.
        run_ranks(n, move |c| {
            let mk = |scale: f32| -> Vec<Vec<f32>> {
                lens.iter().enumerate().map(|(b, &len)| {
                    (0..len)
                        .map(|i| {
                            let v = ((c.rank() * 31 + b * 17 + i * 7 + seed as usize) % 23) as f32;
                            (v - 11.0) * scale
                        })
                        .collect()
                }).collect()
            };
            let exact = bucketed_allreduce(&c, mk(0.25), ReduceOp::Sum);
            // The ring's reduce-scatter + all-gather rounds each value at
            // most 2(n-1) times; add slack for the final sum magnitude.
            for (wire, ulp) in [(WireDType::BF16, 1.0 / 256.0), (WireDType::F16, 1.0 / 2048.0)] {
                let got = bucketed_allreduce_wire(&c, mk(0.25), ReduceOp::Sum, wire);
                let tol_rel = 2.0 * n as f32 * ulp;
                for (be, bg) in exact.iter().zip(&got) {
                    assert_eq!(be.len(), bg.len());
                    for (&e, &g) in be.iter().zip(bg.iter()) {
                        let tol = (e.abs() * tol_rel).max(tol_rel);
                        assert!(
                            (e - g).abs() <= tol,
                            "{wire} wire drifted: exact={e} got={g} tol={tol} n={n}"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn reduce_scatter_then_allgather_is_allreduce(n in 1usize..8, len in 1usize..50) {
        run_ranks(n, |c| {
            let data: Vec<f32> = (0..len).map(|i| (c.rank() + i) as f32).collect();
            let full = allreduce(&c, data.clone(), ReduceOp::Sum);
            let chunk = reduce_scatter(&c, data, ReduceOp::Sum);
            let gathered = allgather(&c, chunk);
            let recomposed: Vec<f32> = gathered.into_iter().flatten().collect();
            assert_eq!(full, recomposed);
        });
    }

    #[test]
    fn broadcast_reaches_everyone(n in 1usize..10, root_sel in 0usize..10, len in 0usize..30) {
        let root = root_sel % n;
        run_ranks(n, |c| {
            let msg = (c.rank() == root).then(|| (0..len).map(|i| i as f32 * 0.5).collect());
            let got = broadcast(&c, root, msg);
            assert_eq!(got.len(), len);
            for (i, &v) in got.iter().enumerate() {
                assert_eq!(v, i as f32 * 0.5);
            }
        });
    }
}

#[test]
fn alltoallv_total_volume_is_conserved() {
    // Whatever is sent is received, exactly once.
    let n = 6;
    let sums = run_ranks_map(n, |c| {
        let parts: Vec<Vec<f32>> = (0..n).map(|d| vec![1.0f32; (c.rank() + d) % 4]).collect();
        let sent: usize = parts.iter().map(|p| p.len()).sum();
        let got = alltoallv(&c, parts);
        let received: usize = got.iter().map(|p| p.len()).sum();
        (sent, received)
    });
    let total_sent: usize = sums.iter().map(|(s, _)| s).sum();
    let total_recv: usize = sums.iter().map(|(_, r)| r).sum();
    assert_eq!(total_sent, total_recv);
}

/// The deadline harness passes well-behaved collective rounds straight
/// through — and would convert any future deadlock in them into a fast,
/// attributable failure instead of a hung test run.
#[test]
fn collective_round_completes_under_deadline_watchdog() {
    use bagualu_comm::harness::run_ranks_deadline;
    use std::time::Duration;

    run_ranks_deadline(4, Duration::from_secs(30), |c| {
        let summed = allreduce(&c, vec![c.rank() as f32; 16], ReduceOp::Sum);
        assert!(summed.iter().all(|&v| v == 6.0));
        let rows = allgather(&c, vec![c.rank() as f32]);
        assert_eq!(rows, vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
    });
}
