//! The kitchen-sink integration test: tokenizer → distributed MoDa
//! training (hierarchical all-to-all, bf16 mixed precision, LR schedule)
//! → sharded checkpoint → restore into a *different* rank layout →
//! KV-cached generation → decoded text. Every major subsystem in one flow.

use bagualu::checkpoint::{load_params_from_files, save_params};
use bagualu::comm::harness::run_ranks_map;
use bagualu::comm::shm::Communicator;
use bagualu::model::config::ModelConfig;
use bagualu::model::loss::cross_entropy;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::Transformer;
use bagualu::optim::adam::AdamConfig;
use bagualu::optim::mixed::MixedPrecision;
use bagualu::optim::schedule::LrSchedule;
use bagualu::parallel::model_dist::DistTransformer;
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::parallel::sync::sync_grads;
use bagualu::tensor::rng::Rng;
use bagualu::tensor::DType;
use bagualu::tokenizer::Bpe;

const CORPUS: &str = "the gate sends the tokens to the experts and the experts answer \
the gate. the tokens travel to the experts and the experts answer. \
the gate learns and the tokens travel. the experts answer the gate. ";

#[test]
fn tokenize_train_checkpoint_repartition_generate() {
    // ---- 1. Tokenize a real corpus.
    let bpe = Bpe::train(CORPUS, 300);
    let stream = bpe.encode(CORPUS);
    assert_eq!(bpe.decode(&stream), CORPUS);

    let cfg = ModelConfig {
        vocab: bpe.vocab_size(),
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        max_seq: 32,
        n_experts: 4,
        rope: true,
        tie_embeddings: true,
        ..ModelConfig::tiny()
    };
    const SEQ: usize = 8;
    const BATCH: usize = 4;
    const NRANKS: usize = 2;

    let dir = std::env::temp_dir().join(format!("bagualu-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // ---- 2. Distributed training on the token stream.
    let (stream_ref, dir_ref) = (&stream, &dir);
    let losses = run_ranks_map(NRANKS, move |comm| {
        let rank = comm.rank();
        let mut model = DistTransformer::new(
            cfg,
            909,
            rank,
            NRANKS,
            A2aKind::Hierarchical { supernode_size: 1 },
        );
        let mut opt = MixedPrecision::new(
            AdamConfig {
                lr: 0.0,
                ..Default::default()
            },
            DType::BF16,
        );
        opt.quantize_model(&mut model);
        let schedule = LrSchedule::WarmupCosine {
            peak: 5e-3,
            warmup: 10,
            total: 200,
            floor: 5e-4,
        };
        let mut data_rng = Rng::for_rank(33, rank);
        let mut last = f32::NAN;
        let mut first = f32::NAN;
        for step in 0..200 {
            opt.set_lr(schedule.at(step));
            let mut tokens = Vec::with_capacity(BATCH * SEQ);
            let mut targets = Vec::with_capacity(BATCH * SEQ);
            for _ in 0..BATCH {
                let start = data_rng.below(stream_ref.len() - SEQ - 1);
                tokens.extend_from_slice(&stream_ref[start..start + SEQ]);
                targets.extend_from_slice(&stream_ref[start + 1..start + SEQ + 1]);
            }
            let logits = model.forward(&tokens, BATCH, SEQ, &comm);
            let (loss, mut dlogits) = cross_entropy(&logits, &targets);
            dlogits.scale(opt.loss_scale());
            model.backward(&dlogits, &comm);
            sync_grads(&mut model, &comm);
            opt.step(&mut model);
            model.zero_grad();
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        // ---- 3. Checkpoint this rank's shard.
        save_params(dir_ref.join(format!("rank{rank}.bglu")), &mut model).unwrap();
        (first, last)
    });
    for (rank, (first, last)) in losses.iter().enumerate() {
        assert!(
            last < &(first * 0.2),
            "rank {rank} did not learn: {first} -> {last}"
        );
    }

    // ---- 4. Restore into a single-rank *local* model (repartitioning from
    // 2 distributed shards to 1 full model) and generate text.
    let mut local = Transformer::new(cfg, &mut Rng::seed_from(1));
    let paths: Vec<_> = (0..NRANKS)
        .map(|r| dir.join(format!("rank{r}.bglu")))
        .collect();
    load_params_from_files(&paths, &mut local).unwrap();

    let prompt = bpe.encode("the gate");
    let out = local.generate_cached(&prompt, 16.min(cfg.max_seq - prompt.len()));
    let text = bpe.decode(&out);
    let known: std::collections::HashSet<&str> = CORPUS.split_whitespace().collect();
    let words: Vec<&str> = text.split_whitespace().collect();
    let on_corpus = words.iter().filter(|w| known.contains(*w)).count();
    assert!(
        on_corpus * 2 >= words.len(),
        "restored model generated off-corpus text: {text:?}"
    );

    // ---- 5. Sampled generation stays in vocabulary.
    let mut srng = Rng::seed_from(5);
    let sampled = local.generate_sampled(&prompt, 8, 0.8, 10, &mut srng);
    assert!(sampled.iter().all(|&t| t < cfg.vocab));

    let _ = std::fs::remove_dir_all(&dir);
}
